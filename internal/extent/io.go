package extent

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/buddy"
	"repro/internal/pager"
	"repro/internal/undo"
)

// maxHoleLen bounds a single hole cell (Len is uint32).
const maxHoleLen = 1 << 30

// ReadAt reads into p starting at byte offset off, zero-filling holes.
// It returns the number of bytes read; reads that reach the object's end
// return io.EOF alongside the bytes read, as io.ReaderAt does.
func (t *Tree) ReadAt(p []byte, off uint64) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.readAtLocked(p, off)
}

// readAtLocked is ReadAt with t.mu already held (either mode). Mutation
// paths use it to read before-images for undo records while holding the
// exclusive lock.
func (t *Tree) readAtLocked(p []byte, off uint64) (int, error) {
	if off >= t.size {
		return 0, io.EOF
	}
	n := len(p)
	eof := false
	if off+uint64(n) >= t.size {
		n = int(t.size - off)
		eof = true
	}
	p = p[:n]

	_, leafPno, rem, err := t.descend(off)
	if err != nil {
		return 0, err
	}
	done := 0
	for done < n && leafPno != 0 {
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return done, err
		}
		node := nodeRef{pg.Data()}
		idx, eOff := node.findInLeaf(rem)
		cnt := node.ncells()
		type job struct {
			e    Extent
			eOff uint64
			m    int
		}
		var jobs []job
		for ; idx < cnt && done < n; idx++ {
			e := node.leafCell(idx)
			avail := uint64(e.Len) - eOff
			m := n - done
			if uint64(m) > avail {
				m = int(avail)
			}
			jobs = append(jobs, job{e, eOff, m})
			done += m
			eOff = 0
		}
		next := node.next()
		t.pg.Release(pg)
		// Perform device I/O outside the page pin.
		pos := done
		for i := len(jobs) - 1; i >= 0; i-- {
			pos -= jobs[i].m
		}
		for _, j := range jobs {
			dst := p[pos : pos+j.m]
			if j.e.IsHole() {
				for i := range dst {
					dst[i] = 0
				}
			} else if err := t.readExtentData(j.e, j.eOff, dst); err != nil {
				return pos, err
			}
			pos += j.m
		}
		leafPno = next
		rem = 0
	}
	if done < n {
		return done, fmt.Errorf("%w: ran out of extents at %d of %d", ErrCorrupt, done, n)
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at byte offset off, extending the object as needed.
// Writing past the current end creates a hole (sparse object).
func (t *Tree) WriteAt(p []byte, off uint64) error {
	return t.WriteAtOp(nil, p, off)
}

// WriteAtOp is WriteAt capturing node-page mutations into op's redo set.
func (t *Tree) WriteAtOp(op *pager.Op, p []byte, off uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curOp = op
	defer func() { t.curOp = nil }()
	if len(p) == 0 {
		return nil
	}
	if op.UndoEnabled() {
		end := off + uint64(len(p))
		if off < t.size {
			// Overlap: the inverse restores the overwritten bytes.
			oend := end
			if oend > t.size {
				oend = t.size
			}
			old, err := t.oldBytes(off, oend-off)
			if err != nil {
				return err
			}
			op.StageUndo(undo.ExtWrite(t.hdr, off, old))
		}
		if end > t.size {
			// Growth (hole plus tail data): the inverse truncates back.
			op.StageUndo(undo.ExtDel(t.hdr, t.size, end-t.size))
		}
	}
	return t.finishMutation(t.writeAtLocked(p, off))
}

// oldBytes reads [off, off+n) as an undo before-image. Holes read back
// as zeros, so re-inserting the image materializes them — logically
// identical content, merely a denser physical representation.
func (t *Tree) oldBytes(off, n uint64) ([]byte, error) {
	buf := make([]byte, n)
	if n == 0 {
		return buf, nil
	}
	if _, err := t.readAtLocked(buf, off); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf, nil
}

// finishMutation rewrites the header and returns the first error. It
// runs even when the mutation failed part-way: the cache mutations are
// already applied and the commit bracket appends the staged records
// regardless — rollback, when it runs, is a *separate* pass executing
// the op's captured inverses as CLRs — so the header record must
// describe the partially applied state — otherwise replaying the
// records would reconstruct a tree whose header contradicts its leaves.
func (t *Tree) finishMutation(err error) error {
	if herr := t.writeHeader(); err == nil {
		err = herr
	}
	return err
}

func (t *Tree) writeAtLocked(p []byte, off uint64) error {
	if off > t.size {
		if err := t.appendHole(off - t.size); err != nil {
			return err
		}
	}
	done := 0
	// Overwrite the portion overlapping existing bytes.
	for done < len(p) && off+uint64(done) < t.size {
		cur := off + uint64(done)
		path, leafPno, rem, err := t.descend(cur)
		if err != nil {
			return err
		}
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		node := nodeRef{pg.Data()}
		idx, eOff := node.findInLeaf(rem)
		if idx >= node.ncells() {
			t.pg.Release(pg)
			return fmt.Errorf("%w: write descent found no extent at %d", ErrCorrupt, cur)
		}
		e := node.leafCell(idx)
		t.pg.Release(pg)
		avail := uint64(e.Len) - eOff
		m := len(p) - done
		if uint64(m) > avail {
			m = int(avail)
		}
		if !e.IsHole() {
			if err := t.writeExtentData(e, eOff, p[done:done+m]); err != nil {
				return err
			}
		} else {
			// Materialize exactly [cur, cur+m) of the hole, then land the
			// data in fresh allocations.
			if err := t.splitBoundaryLocked(cur); err != nil {
				return err
			}
			if err := t.splitBoundaryLocked(cur + uint64(m)); err != nil {
				return err
			}
			// After splitting, one hole cell spans exactly [cur, cur+m).
			path, leafPno, rem, err = t.descend(cur)
			if err != nil {
				return err
			}
			pg, err := t.pg.Acquire(leafPno)
			if err != nil {
				return err
			}
			node = nodeRef{pg.Data()}
			idx, eOff = node.findInLeaf(rem)
			if eOff != 0 || idx >= node.ncells() {
				t.pg.Release(pg)
				return fmt.Errorf("%w: hole not aligned after split", ErrCorrupt)
			}
			he := node.leafCell(idx)
			t.pg.Release(pg)
			if !he.IsHole() || uint64(he.Len) != uint64(m) {
				return fmt.Errorf("%w: expected %d-byte hole at %d", ErrCorrupt, m, cur)
			}
			if err := t.removeCellAt(path, leafPno, idx, cur); err != nil {
				return err
			}
			t.size -= uint64(m)
			if err := t.insertBytesAt(cur, p[done:done+m]); err != nil {
				return err
			}
		}
		done += m
	}
	// Append the remainder.
	if done < len(p) {
		return t.appendBytes(p[done:])
	}
	return nil
}

// Append writes p at the current end of the object and returns the new
// size. Unlike WriteAt(p, Size()), the end offset is resolved under the
// same lock acquisition that performs the write, so concurrent appenders
// serialize instead of landing on one stale offset and overwriting each
// other.
func (t *Tree) Append(p []byte) (uint64, error) {
	return t.AppendOp(nil, p)
}

// AppendOp is Append capturing node-page mutations into op's redo set.
func (t *Tree) AppendOp(op *pager.Op, p []byte) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curOp = op
	defer func() { t.curOp = nil }()
	if len(p) == 0 {
		return t.size, nil
	}
	// Inverse of an append: delete the appended tail.
	op.StageUndo(undo.ExtDel(t.hdr, t.size, uint64(len(p))))
	err := t.finishMutation(t.appendBytes(p))
	return t.size, err
}

// InsertAt inserts p at byte offset off, shifting all later bytes and
// growing the object by len(p). This is the paper's insert call: the
// structural cost is O(log extents) plus at most one bounded tail copy.
func (t *Tree) InsertAt(off uint64, p []byte) error {
	return t.InsertAtOp(nil, off, p)
}

// InsertAtOp is InsertAt capturing node-page mutations into op's redo set.
func (t *Tree) InsertAtOp(op *pager.Op, off uint64, p []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curOp = op
	defer func() { t.curOp = nil }()
	if off > t.size {
		return fmt.Errorf("%w: insert at %d, size %d", ErrOutOfRange, off, t.size)
	}
	if len(p) == 0 {
		return nil
	}
	// Inverse of an insert: delete the inserted range, shifting the
	// later bytes back down.
	op.StageUndo(undo.ExtDel(t.hdr, off, uint64(len(p))))
	return t.finishMutation(t.insertAtLocked(off, p))
}

func (t *Tree) insertAtLocked(off uint64, p []byte) error {
	if err := t.splitBoundaryLocked(off); err != nil {
		return err
	}
	return t.insertBytesAt(off, p)
}

// DeleteRange removes n bytes starting at off, shrinking the object and
// shifting later bytes down. This is the paper's two-argument truncate.
func (t *Tree) DeleteRange(off, n uint64) error {
	return t.DeleteRangeOp(nil, off, n)
}

// DeleteRangeOp is DeleteRange capturing node-page mutations into op's
// redo set.
func (t *Tree) DeleteRangeOp(op *pager.Op, off, n uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curOp = op
	defer func() { t.curOp = nil }()
	if off >= t.size || n == 0 {
		return nil
	}
	if op.UndoEnabled() {
		// Inverse of a delete-range: re-insert the removed bytes.
		m := n
		if off+m > t.size {
			m = t.size - off
		}
		old, err := t.oldBytes(off, m)
		if err != nil {
			return err
		}
		op.StageUndo(undo.ExtIns(t.hdr, off, old))
	}
	return t.finishMutation(t.deleteRangeLocked(off, n))
}

func (t *Tree) deleteRangeLocked(off, n uint64) error {
	if off >= t.size || n == 0 {
		return nil
	}
	if off+n > t.size {
		n = t.size - off
	}
	if err := t.splitBoundaryLocked(off); err != nil {
		return err
	}
	if err := t.splitBoundaryLocked(off + n); err != nil {
		return err
	}
	var removed uint64
	for removed < n {
		path, leafPno, rem, err := t.descend(off)
		if err != nil {
			return err
		}
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		node := nodeRef{pg.Data()}
		idx, eOff := node.findInLeaf(rem)
		if eOff != 0 || idx >= node.ncells() {
			t.pg.Release(pg)
			return fmt.Errorf("%w: delete not on boundary at %d", ErrCorrupt, off)
		}
		e := node.leafCell(idx)
		t.pg.Release(pg)
		if uint64(e.Len) > n-removed {
			return fmt.Errorf("%w: extent %d overruns delete range", ErrCorrupt, e.Len)
		}
		if !e.IsHole() {
			// The run is freed through the allocator's limbo when deferred
			// frees are on: it must not be reallocated (and overwritten)
			// before this delete's commit — and the checkpoint covering it
			// — are durable, or a crash could replay the old extent over a
			// new owner's blocks.
			if err := t.ba.Free(e.Alloc, uint64(e.AllocBlocks)); err != nil {
				return err
			}
		}
		if err := t.removeCellAt(path, leafPno, idx, off); err != nil {
			return err
		}
		removed += uint64(e.Len)
		t.size -= uint64(e.Len)
	}
	return nil
}

// Truncate sets the object's size. Shrinking frees storage from the end;
// growing appends a hole.
func (t *Tree) Truncate(newSize uint64) error {
	return t.TruncateOp(nil, newSize)
}

// TruncateOp is Truncate capturing node-page mutations into op's redo set.
func (t *Tree) TruncateOp(op *pager.Op, newSize uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curOp = op
	defer func() { t.curOp = nil }()
	switch {
	case newSize < t.size:
		if op.UndoEnabled() {
			// Inverse of a shrink: re-insert the truncated tail.
			old, err := t.oldBytes(newSize, t.size-newSize)
			if err != nil {
				return err
			}
			op.StageUndo(undo.ExtIns(t.hdr, newSize, old))
		}
		return t.finishMutation(t.deleteRangeLocked(newSize, t.size-newSize))
	case newSize > t.size:
		// Inverse of a grow: delete the appended hole.
		op.StageUndo(undo.ExtDel(t.hdr, t.size, newSize-t.size))
		return t.finishMutation(t.appendHole(newSize - t.size))
	default:
		return nil
	}
}

// Destroy frees all extents and tree pages, including the header. The
// tree must not be used afterwards.
func (t *Tree) Destroy() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Free data allocations by walking the leaf chain.
	leafPno, err := t.firstLeaf()
	if err != nil {
		return err
	}
	for leafPno != 0 {
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		node := nodeRef{pg.Data()}
		var allocs []Extent
		for i := 0; i < node.ncells(); i++ {
			if e := node.leafCell(i); !e.IsHole() {
				allocs = append(allocs, e)
			}
		}
		next := node.next()
		t.pg.Release(pg)
		for _, e := range allocs {
			if err := t.ba.Free(e.Alloc, uint64(e.AllocBlocks)); err != nil {
				return err
			}
		}
		leafPno = next
	}
	// Free node pages.
	var freeTree func(pno uint64, level int) error
	freeTree = func(pno uint64, level int) error {
		if level < t.height-1 {
			pg, err := t.pg.Acquire(pno)
			if err != nil {
				return err
			}
			node := nodeRef{pg.Data()}
			children := make([]uint64, node.ncells())
			for i := range children {
				children[i] = node.childCell(i).child
			}
			t.pg.Release(pg)
			for _, c := range children {
				if err := freeTree(c, level+1); err != nil {
					return err
				}
			}
		}
		return t.freePage(pno)
	}
	if err := freeTree(t.root, 0); err != nil {
		return err
	}
	if err := t.freePage(t.hdr); err != nil {
		return err
	}
	t.size, t.extents, t.root, t.height = 0, 0, 0, 0
	return nil
}

// --- internals (lock held) ---

// firstLeaf returns the leftmost leaf page.
func (t *Tree) firstLeaf() (uint64, error) {
	pno := t.root
	for level := 0; level < t.height-1; level++ {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return 0, err
		}
		node := nodeRef{pg.Data()}
		if node.ncells() == 0 {
			t.pg.Release(pg)
			return 0, fmt.Errorf("%w: empty internal node %d", ErrCorrupt, pno)
		}
		child := node.childCell(0).child
		t.pg.Release(pg)
		pno = child
	}
	return pno, nil
}

// splitBoundaryLocked ensures an extent boundary exists at byte offset
// off. Splitting a real extent copies the tail into a fresh allocation
// (bounded by MaxExtentBytes) so allocations are never shared.
func (t *Tree) splitBoundaryLocked(off uint64) error {
	if off == 0 || off >= t.size {
		return nil
	}
	path, leafPno, rem, err := t.descend(off)
	if err != nil {
		return err
	}
	pg, err := t.pg.Acquire(leafPno)
	if err != nil {
		return err
	}
	node := nodeRef{pg.Data()}
	idx, eOff := node.findInLeaf(rem)
	if eOff == 0 {
		t.pg.Release(pg)
		return nil // already on a boundary
	}
	e := node.leafCell(idx)
	t.pg.Release(pg)

	rightLen := uint64(e.Len) - eOff
	if e.IsHole() {
		if err := t.setLeafCellLen(path, leafPno, idx, uint32(eOff)); err != nil {
			return err
		}
		return t.insertCellAtOff(off, Extent{Len: uint32(rightLen)})
	}
	// Copy the tail into a fresh allocation.
	blocks := (rightLen + t.bsU64 - 1) / t.bsU64
	alloc, err := t.ba.Alloc(blocks)
	if err != nil {
		return err
	}
	buf := make([]byte, rightLen)
	if err := t.readExtentData(e, eOff, buf); err != nil {
		return err
	}
	right := Extent{Alloc: alloc, AllocBlocks: uint32(buddy.RoundUp(blocks)), Len: uint32(rightLen)}
	if err := t.writeExtentData(right, 0, buf); err != nil {
		return err
	}
	t.addStat(func(s *Stats) { s.ExtentSplits++; s.TailCopyBytes += int64(rightLen) })
	if err := t.setLeafCellLen(path, leafPno, idx, uint32(eOff)); err != nil {
		return err
	}
	return t.insertCellAtOff(off, right)
}

// insertBytesAt inserts data at off (which must be on an extent boundary
// or equal to size), chunked into MaxExtentBytes extents. Grows size.
func (t *Tree) insertBytesAt(off uint64, p []byte) error {
	for len(p) > 0 {
		chunk := len(p)
		if chunk > int(t.cfg.MaxExtentBytes) {
			chunk = int(t.cfg.MaxExtentBytes)
		}
		e, err := t.allocAndWrite(p[:chunk])
		if err != nil {
			return err
		}
		if err := t.insertCellAtOff(off, e); err != nil {
			return err
		}
		t.size += uint64(chunk)
		off += uint64(chunk)
		p = p[chunk:]
	}
	return nil
}

// appendBytes appends p at the end of the object, extending the final
// extent in place when its allocation has slack.
func (t *Tree) appendBytes(p []byte) error {
	for len(p) > 0 {
		path, leafPno, _, err := t.descend(t.size)
		if err != nil {
			return err
		}
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		// Decode what the slack decision needs and drop the pin at
		// once: leafCell copies the cell into an Extent value, so
		// nothing below aliases the page.
		node := nodeRef{pg.Data()}
		cnt := node.ncells()
		var last Extent
		if cnt > 0 {
			last = node.leafCell(cnt - 1)
		}
		t.pg.Release(pg)
		if cnt > 0 && !last.IsHole() {
			slack := uint64(last.AllocBlocks)*t.bsU64 - uint64(last.Len)
			if slack > 0 {
				m := uint64(len(p))
				if m > slack {
					m = slack
				}
				if err := t.writeExtentData(last, uint64(last.Len), p[:m]); err != nil {
					return err
				}
				if err := t.setLeafCellLen(path, leafPno, cnt-1, last.Len+uint32(m)); err != nil {
					return err
				}
				t.size += m
				p = p[m:]
				continue
			}
		}
		chunk := len(p)
		if chunk > int(t.cfg.MaxExtentBytes) {
			chunk = int(t.cfg.MaxExtentBytes)
		}
		e, err := t.allocAndWrite(p[:chunk])
		if err != nil {
			return err
		}
		if err := t.insertCellAtOff(t.size, e); err != nil {
			return err
		}
		t.size += uint64(chunk)
		p = p[chunk:]
	}
	return nil
}

// appendHole extends the object with n bytes of zeros, coalescing with a
// trailing hole when present.
func (t *Tree) appendHole(n uint64) error {
	for n > 0 {
		path, leafPno, _, err := t.descend(t.size)
		if err != nil {
			return err
		}
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		node := nodeRef{pg.Data()}
		cnt := node.ncells()
		if cnt > 0 {
			last := node.leafCell(cnt - 1)
			if last.IsHole() && uint64(last.Len) < maxHoleLen {
				grow := maxHoleLen - uint64(last.Len)
				if grow > n {
					grow = n
				}
				t.pg.Release(pg)
				if err := t.setLeafCellLen(path, leafPno, cnt-1, last.Len+uint32(grow)); err != nil {
					return err
				}
				t.size += grow
				n -= grow
				continue
			}
		}
		t.pg.Release(pg)
		chunk := n
		if chunk > maxHoleLen {
			chunk = maxHoleLen
		}
		if err := t.insertCellAtOff(t.size, Extent{Len: uint32(chunk)}); err != nil {
			return err
		}
		t.size += chunk
		n -= chunk
	}
	return nil
}

// allocAndWrite allocates blocks for p and writes it, returning the extent.
func (t *Tree) allocAndWrite(p []byte) (Extent, error) {
	blocks := (uint64(len(p)) + t.bsU64 - 1) / t.bsU64
	alloc, err := t.ba.Alloc(blocks)
	if err != nil {
		return Extent{}, err
	}
	e := Extent{Alloc: alloc, AllocBlocks: uint32(buddy.RoundUp(blocks)), Len: uint32(len(p))}
	if err := t.writeExtentData(e, 0, p); err != nil {
		return Extent{}, err
	}
	return e, nil
}

// --- raw device data I/O ---

// readExtentData reads len(p) bytes from extent e starting at extOff.
func (t *Tree) readExtentData(e Extent, extOff uint64, p []byte) error {
	buf := make([]byte, t.bs)
	for len(p) > 0 {
		blk := e.Alloc + extOff/t.bsU64
		bo := int(extOff % t.bsU64)
		if bo == 0 && len(p) >= t.bs {
			if err := t.dev.ReadBlock(blk, p[:t.bs]); err != nil {
				return err
			}
			p = p[t.bs:]
			extOff += t.bsU64
			continue
		}
		if err := t.dev.ReadBlock(blk, buf); err != nil {
			return err
		}
		n := copy(p, buf[bo:])
		p = p[n:]
		extOff += uint64(n)
	}
	return nil
}

// writeExtentData writes p into extent e starting at extOff, doing
// read-modify-write for partial blocks.
func (t *Tree) writeExtentData(e Extent, extOff uint64, p []byte) error {
	buf := make([]byte, t.bs)
	for len(p) > 0 {
		blk := e.Alloc + extOff/t.bsU64
		bo := int(extOff % t.bsU64)
		if bo == 0 && len(p) >= t.bs {
			//hfadvet:allow waldata — raw object data rides outside the WAL by design: old-or-new content atomicity, durability carried by the enclosing extent records
			if err := t.dev.WriteBlock(blk, p[:t.bs]); err != nil {
				return err
			}
			p = p[t.bs:]
			extOff += t.bsU64
			continue
		}
		if err := t.dev.ReadBlock(blk, buf); err != nil {
			return err
		}
		n := copy(buf[bo:], p)
		//hfadvet:allow waldata — raw object data rides outside the WAL by design (read-modify-write tail)
		if err := t.dev.WriteBlock(blk, buf); err != nil {
			return err
		}
		p = p[n:]
		extOff += uint64(n)
	}
	return nil
}

// Extents calls fn for every extent in order with its starting offset.
// Used by the checker and the OSD's stat reporting.
func (t *Tree) Extents(fn func(off uint64, e Extent) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leafPno, err := t.firstLeaf()
	if err != nil {
		return err
	}
	var off uint64
	for leafPno != 0 {
		pg, err := t.pg.Acquire(leafPno)
		if err != nil {
			return err
		}
		node := nodeRef{pg.Data()}
		exts := make([]Extent, node.ncells())
		for i := range exts {
			exts[i] = node.leafCell(i)
		}
		next := node.next()
		t.pg.Release(pg)
		for _, e := range exts {
			if !fn(off, e) {
				return nil
			}
			off += uint64(e.Len)
		}
		leafPno = next
	}
	return nil
}
