// Physiological redo for extent-tree pages: typed per-page operations
// that recovery re-executes instead of replaying whole page images.
//
// Extent trees are object-private (one mutator lock serializes every
// writer of a tree), so unlike btree pages they are never interleaved by
// concurrent transactions — but they were still image-logged per
// operation, which made a 30-byte append pay a 4 KiB record per touched
// tree level. The records here log the logical mutation instead:
//
//   - Per-operation records (staged into the operation's redo capture,
//     replayed only if its transaction committed): leaf-cell inserts,
//     removes and rewrites addressed by cell index, subtree byte-count
//     deltas on internal nodes, and KindRange records for the tree
//     header and the OSD's shadow metadata.
//   - System-transaction records (auto-committed via wal.AppendSystem
//     the moment they happen): node splits, merges, root growth and
//     collapse. Splits are restructured to be *sum-preserving* — the
//     tree splits a full node around its own midpoint first, then the
//     enclosing operation re-descends and inserts its cell as an
//     ordinary per-op record — so an always-redone split never carries
//     the (possibly uncommitted) triggering cell and never changes any
//     byte count above it. Merges run post-commit (pager.Op.Defer),
//     mirroring btree's deferred rebalance, so replay can never pack an
//     undeleted cell plus a whole sibling into one page.
//
// Replay applies records in global LSN order onto pages materialized
// from their first-touch base images (or zeroes, for fresh pages a
// split/init record rebuilds from scratch), so each record re-executes
// against exactly the state the preceding records built.
//
// Op payloads (first byte is the opcode; all integers little-endian):
//
//	xopInit     typ u8
//	xopLeafIns  idx u16 | cell 16B            (shift right, store)
//	xopLeafSet  idx u16 | cell 16B            (overwrite in place)
//	xopLeafDel  idx u16                       (shift left)
//	xopChildIns idx u16 | child u64 | bytes u64
//	xopChildSet idx u16 | child u64 | bytes u64
//	xopBump     idx u16 | delta u64           (two's complement add to bytes)
//	xopSplit    right u64 | at u16            (cells [at,n) move to right;
//	                                           leaf pages also stitch the chain)
//	xopNewRoot  left u64 | leftBytes u64 | right u64 | rightBytes u64
//	xopMerge    li u16                        (page = parent: children at
//	                                           li, li+1 merge into li's child)
package extent

import (
	"encoding/binary"
	"fmt"
)

// Extent redo opcodes (payload byte 0 of a redo.KindExtentOp record).
const (
	xopInit     = 1
	xopLeafIns  = 2
	xopLeafSet  = 3
	xopLeafDel  = 4
	xopChildIns = 5
	xopChildSet = 6
	xopBump     = 7
	xopSplit    = 8
	xopNewRoot  = 9
	xopMerge    = 10
)

func encCell(e Extent) []byte {
	var b [leafCellSize]byte
	binary.LittleEndian.PutUint64(b[:], e.Alloc)
	binary.LittleEndian.PutUint32(b[8:], e.AllocBlocks)
	binary.LittleEndian.PutUint32(b[12:], e.Len)
	return b[:]
}

func decCell(b []byte) Extent {
	return Extent{
		Alloc:       binary.LittleEndian.Uint64(b),
		AllocBlocks: binary.LittleEndian.Uint32(b[8:]),
		Len:         binary.LittleEndian.Uint32(b[12:]),
	}
}

func encXop(code byte, parts ...[]byte) []byte {
	n := 1
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 1, n)
	out[0] = code
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func xu16(v int) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(v))
	return b[:]
}

func xu64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// errXReplay wraps replay decoding/execution failures.
func errXReplay(format string, args ...any) error {
	return fmt.Errorf("%w: replay: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func xTakeU16(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, errXReplay("short u16")
	}
	return int(binary.LittleEndian.Uint16(b)), b[2:], nil
}

func xTakeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errXReplay("short u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func xTakeCell(b []byte) (Extent, []byte, error) {
	if len(b) < leafCellSize {
		return Extent{}, nil, errXReplay("short cell")
	}
	return decCell(b), b[leafCellSize:], nil
}

// zeroInit zeroes a page and sets its type byte. Split/new-root targets
// are fresh (AcquireZero) pages whose home content is garbage; replay
// rebuilds them from the record alone.
func zeroInit(data []byte, typ byte) nodeRef {
	for i := range data {
		data[i] = 0
	}
	data[offType] = typ
	return nodeRef{data}
}

// cellBytes returns the raw cell region [i, j) of a node (leaf and
// internal cells share the 16-byte size).
func cellBytes(n nodeRef, i, j int) []byte {
	return n.data[hdrSize+i*leafCellSize : hdrSize+j*leafCellSize]
}

// ReplayOp re-executes one extent redo op against raw page bytes
// obtained through get (which materializes pages from their home
// locations, base images, and earlier replayed records). pageNo is the
// record's page; ops that span pages (splits, merges, root growth)
// fetch the others through get.
func ReplayOp(get func(pno uint64) ([]byte, error), pageNo uint64, payload []byte) error {
	if len(payload) == 0 {
		return errXReplay("empty op payload")
	}
	code, b := payload[0], payload[1:]
	data, err := get(pageNo)
	if err != nil {
		return err
	}
	n := nodeRef{data}

	switch code {
	case xopInit:
		if len(b) < 1 {
			return errXReplay("xopInit missing type")
		}
		zeroInit(data, b[0])
		return nil

	case xopLeafIns:
		idx, rest, err := xTakeU16(b)
		if err != nil {
			return err
		}
		e, _, err := xTakeCell(rest)
		if err != nil {
			return err
		}
		cnt := n.ncells()
		if idx > cnt || hdrSize+(cnt+1)*leafCellSize > len(data) {
			return errXReplay("leaf insert at %d of %d on page %d", idx, cnt, pageNo)
		}
		n.insertLeafCell(idx, e)
		return nil

	case xopLeafSet:
		idx, rest, err := xTakeU16(b)
		if err != nil {
			return err
		}
		e, _, err := xTakeCell(rest)
		if err != nil {
			return err
		}
		if idx >= n.ncells() {
			return errXReplay("leaf set at %d of %d on page %d", idx, n.ncells(), pageNo)
		}
		n.setLeafCell(idx, e)
		return nil

	case xopLeafDel:
		idx, _, err := xTakeU16(b)
		if err != nil {
			return err
		}
		if idx >= n.ncells() {
			return errXReplay("leaf delete at %d of %d on page %d", idx, n.ncells(), pageNo)
		}
		n.removeLeafCell(idx)
		return nil

	case xopChildIns:
		idx, rest, err := xTakeU16(b)
		if err != nil {
			return err
		}
		child, rest, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		bytes, _, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		cnt := n.ncells()
		if idx > cnt || hdrSize+(cnt+1)*internalCellSize > len(data) {
			return errXReplay("child insert at %d of %d on page %d", idx, cnt, pageNo)
		}
		n.insertChildCell(idx, childEntry{child, bytes})
		return nil

	case xopChildSet:
		idx, rest, err := xTakeU16(b)
		if err != nil {
			return err
		}
		child, rest, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		bytes, _, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		if idx >= n.ncells() {
			return errXReplay("child set at %d of %d on page %d", idx, n.ncells(), pageNo)
		}
		n.setChildCell(idx, childEntry{child, bytes})
		return nil

	case xopBump:
		idx, rest, err := xTakeU16(b)
		if err != nil {
			return err
		}
		delta, _, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		if idx >= n.ncells() {
			return errXReplay("bump at %d of %d on page %d", idx, n.ncells(), pageNo)
		}
		c := n.childCell(idx)
		c.bytes = uint64(int64(c.bytes) + int64(delta))
		n.setChildCell(idx, c)
		return nil

	case xopSplit:
		right, rest, err := xTakeU64(b)
		if err != nil {
			return err
		}
		at, _, err := xTakeU16(rest)
		if err != nil {
			return err
		}
		cnt := n.ncells()
		if at > cnt {
			// A leaf split's index was computed over the splitting
			// operation's own (then-uncommitted) cells; if that
			// operation's records were dropped, the committed leaf can
			// hold fewer. Clamp: committed cells all stay left, the
			// right sibling comes up empty, and chain order — hence
			// content — is preserved. The parent's recorded sums are off
			// by the dropped cells; the unclean-open recount heals them.
			// (Internal-node indexes never need this: internal cell
			// counts change only through system transactions, which
			// replay unconditionally.)
			at = cnt
		}
		rdata, err := get(right)
		if err != nil {
			return err
		}
		rn := zeroInit(rdata, n.typ())
		copy(cellBytes(rn, 0, cnt-at), cellBytes(n, at, cnt))
		rn.setNCells(cnt - at)
		n.setNCells(at)
		if n.typ() == pageLeaf {
			rn.setNext(n.next())
			rn.setPrev(pageNo)
			n.setNext(right)
			// The old next leaf's prev pointer is fixed by its own range
			// record in the same system transaction.
		}
		return nil

	case xopNewRoot:
		left, rest, err := xTakeU64(b)
		if err != nil {
			return err
		}
		leftBytes, rest, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		right, rest, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		rightBytes, _, err := xTakeU64(rest)
		if err != nil {
			return err
		}
		np := zeroInit(data, pageInternal)
		np.setChildCell(0, childEntry{left, leftBytes})
		np.setChildCell(1, childEntry{right, rightBytes})
		np.setNCells(2)
		return nil

	case xopMerge:
		li, _, err := xTakeU16(b)
		if err != nil {
			return err
		}
		if li+1 >= n.ncells() {
			return errXReplay("merge at %d of %d on page %d", li, n.ncells(), pageNo)
		}
		lc, rc := n.childCell(li), n.childCell(li+1)
		ldata, err := get(lc.child)
		if err != nil {
			return err
		}
		rdata, err := get(rc.child)
		if err != nil {
			return err
		}
		ln, rn := nodeRef{ldata}, nodeRef{rdata}
		if ln.typ() != rn.typ() {
			return errXReplay("merge type mismatch under page %d", pageNo)
		}
		base, rcnt := ln.ncells(), rn.ncells()
		if hdrSize+(base+rcnt)*leafCellSize > len(ldata) {
			return errXReplay("merge overflow under page %d", pageNo)
		}
		copy(cellBytes(ln, base, base+rcnt), cellBytes(rn, 0, rcnt))
		ln.setNCells(base + rcnt)
		if ln.typ() == pageLeaf {
			ln.setNext(rn.next())
			// The next leaf's prev pointer rides its own range record.
		}
		n.setChildCell(li, childEntry{lc.child, lc.bytes + rc.bytes})
		n.removeChildCell(li + 1)
		return nil

	default:
		return errXReplay("unknown opcode %d", code)
	}
}
