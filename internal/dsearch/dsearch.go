// Package dsearch is the desktop-search baseline (the Windows Desktop
// Search / Spotlight model the paper's introduction cites): a full-text
// index built **on top of files in the file system**, exactly the layering
// §2.3 criticizes.
//
// The search index is a btree whose backing store is a regular file on
// hierfs, reached through a block-device adapter. Every index page read
// therefore pays the file system's own physical indexing (inode pointer
// walks) before the device is touched — Stonebraker's "superfluous level
// of indirection" made mechanical. The search-term → data-block path is:
//
//  1. search-index btree descent        (search index traversal)
//  2. … each page via the index file    (physical index of the index file)
//  3. hierfs path resolution            (namespace traversal per component)
//  4. target file pointer walk + read   (physical index of the target)
//
// — the paper's "at a minimum, four index traversals". Experiment E1
// counts them against hFAD's two (tag index, extent tree).
package dsearch

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/btree"
	"repro/internal/fulltext"
	"repro/internal/hierfs"
	"repro/internal/pager"
)

// Errors.
var (
	ErrNotBuilt = errors.New("dsearch: index not built")
)

// FileDevice adapts a hierfs file to the block-device interface, so a
// btree (and its pager) can live inside a file.
type FileDevice struct {
	fs     *hierfs.FS
	ino    uint64
	bs     int
	blocks uint64
	closed bool
	mu     sync.Mutex
}

// NewFileDevice creates (or truncates) path on fs and sizes it to hold
// blocks × blockSize bytes.
func NewFileDevice(fs *hierfs.FS, path string, blocks uint64) (*FileDevice, error) {
	ino, err := fs.Create(path, 0o644)
	if err != nil {
		return nil, err
	}
	bs := blockdev.DefaultBlockSize
	// Grow to full size (sparse: hierfs just records the size).
	if err := fs.Truncate(path, blocks*uint64(bs)); err != nil {
		return nil, err
	}
	return &FileDevice{fs: fs, ino: ino, bs: bs, blocks: blocks}, nil
}

// OpenFileDevice attaches to an existing index file without truncating.
func OpenFileDevice(fs *hierfs.FS, path string) (*FileDevice, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	bs := blockdev.DefaultBlockSize
	return &FileDevice{fs: fs, ino: info.Ino, bs: bs, blocks: info.Size / uint64(bs)}, nil
}

// ReadBlock implements blockdev.Device via a file read.
func (d *FileDevice) ReadBlock(n uint64, p []byte) error {
	if n >= d.blocks {
		return blockdev.ErrOutOfRange
	}
	if len(p) != d.bs {
		return blockdev.ErrBadLength
	}
	_, err := d.fs.ReadAtIno(d.ino, p, n*uint64(d.bs))
	if errors.Is(err, io.EOF) {
		err = nil
	}
	return err
}

// WriteBlock implements blockdev.Device via a file write.
func (d *FileDevice) WriteBlock(n uint64, p []byte) error {
	if n >= d.blocks {
		return blockdev.ErrOutOfRange
	}
	if len(p) != d.bs {
		return blockdev.ErrBadLength
	}
	return d.fs.WriteAtIno(d.ino, p, n*uint64(d.bs))
}

// BlockSize implements blockdev.Device.
func (d *FileDevice) BlockSize() int { return d.bs }

// NumBlocks implements blockdev.Device.
func (d *FileDevice) NumBlocks() uint64 { return d.blocks }

// Sync implements blockdev.Device.
func (d *FileDevice) Sync() error { return d.fs.Sync() }

// Close implements blockdev.Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// bumpAlloc is a grow-only page allocator for the index file device;
// desktop-search indexes are rebuilt, not incrementally reclaimed.
type bumpAlloc struct {
	mu   sync.Mutex
	next uint64
	max  uint64
}

func (a *bumpAlloc) AllocPage() (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.next >= a.max {
		return 0, fmt.Errorf("dsearch: index file full (%d blocks)", a.max)
	}
	n := a.next
	a.next++
	return n, nil
}

func (a *bumpAlloc) FreePage(no uint64) error { return nil } // rebuilt wholesale

// Stats aggregates the traversal accounting for one (or more) searches.
type Stats struct {
	SearchIndexLevels int64 // btree pages descended in the search index
	IndexFileHops     int64 // inode pointer walks serving index pages
	DirLookups        int64 // namespace components resolved
	TargetFileHops    int64 // pointer walks in the target file
	BlocksRead        int64
}

// IndexTraversals returns the count of distinct index structures walked —
// the quantity §2.3 bounds below by four for this architecture: the search
// index, the index file's physical index, one directory per pathname
// component, and the target file's physical index.
func (s Stats) IndexTraversals() int64 {
	return 1 + 1 + s.DirLookups + 1
}

// Engine is a desktop-search service over a hierfs volume.
type Engine struct {
	fs        *hierfs.FS
	dev       *FileDevice
	alloc     *bumpAlloc
	pg        *pager.Pager
	tree      *btree.Tree
	indexPath string
	docs      int
	built     bool
}

// New creates an engine whose index file lives at indexPath on fs,
// pre-sized to indexBlocks blocks.
func New(fs *hierfs.FS, indexPath string, indexBlocks uint64) (*Engine, error) {
	dev, err := NewFileDevice(fs, indexPath, indexBlocks)
	if err != nil {
		return nil, err
	}
	alloc := &bumpAlloc{max: indexBlocks}
	pg := pager.New(dev, 64, true)
	tree, err := btree.Create(pg, alloc)
	if err != nil {
		return nil, err
	}
	return &Engine{fs: fs, dev: dev, alloc: alloc, pg: pg, tree: tree, indexPath: indexPath}, nil
}

// Open reattaches an engine to an index previously built at indexPath.
// The btree header is always the index file's first block (the bump
// allocator hands out page 0 first).
func Open(fs *hierfs.FS, indexPath string, docs int) (*Engine, error) {
	dev, err := OpenFileDevice(fs, indexPath)
	if err != nil {
		return nil, err
	}
	alloc := &bumpAlloc{max: dev.NumBlocks()}
	pg := pager.New(dev, 64, true)
	tree, err := btree.Open(pg, alloc, 0)
	if err != nil {
		return nil, err
	}
	return &Engine{
		fs: fs, dev: dev, alloc: alloc, pg: pg, tree: tree,
		indexPath: indexPath, docs: docs, built: true,
	}, nil
}

// entryKey is term + 0x00 + path: a multimap from terms to paths.
func entryKey(term, path string) []byte {
	k := make([]byte, 0, len(term)+1+len(path))
	k = append(k, term...)
	k = append(k, 0)
	return append(k, path...)
}

// Crawl walks the filesystem from root, indexing every regular file's
// content. Returns the number of documents indexed.
func (e *Engine) Crawl(root string) (int, error) {
	count := 0
	err := e.fs.Walk(root, func(p string, info hierfs.FileInfo) error {
		if info.IsDir() || p == e.indexPath {
			return nil
		}
		data, err := e.fs.ReadFile(p)
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, term := range fulltext.Tokenize(string(data)) {
			if seen[term] {
				continue
			}
			seen[term] = true
			if err := e.tree.Put(entryKey(term, p), nil); err != nil {
				return err
			}
		}
		count++
		return nil
	})
	if err != nil {
		return count, err
	}
	e.docs = count
	e.built = true
	return count, e.pg.Sync()
}

// Docs returns the number of indexed documents.
func (e *Engine) Docs() int { return e.docs }

// Search returns the paths of files containing every term (conjunction).
func (e *Engine) Search(terms ...string) ([]string, error) {
	if !e.built {
		return nil, ErrNotBuilt
	}
	var result map[string]bool
	for _, raw := range terms {
		toks := fulltext.Tokenize(raw)
		if len(toks) == 0 {
			return nil, nil
		}
		for _, term := range toks {
			matches := map[string]bool{}
			prefix := append([]byte(term), 0)
			err := e.tree.ScanPrefix(prefix, func(k, _ []byte) bool {
				matches[string(k[len(prefix):])] = true
				return true
			})
			if err != nil {
				return nil, err
			}
			if result == nil {
				result = matches
			} else {
				for p := range result {
					if !matches[p] {
						delete(result, p)
					}
				}
			}
			if len(result) == 0 {
				return nil, nil
			}
		}
	}
	out := make([]string, 0, len(result))
	for p := range result {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// SearchToData performs the full paper §2.3 path: resolve the term to
// files, then resolve each file's pathname through the hierarchy, then
// read its first data block. Returns the paths and the traversal
// accounting for exactly this operation.
func (e *Engine) SearchToData(term string) ([]string, Stats, error) {
	fsBase := e.fs.Stats()
	treeBase := e.tree.Stats()

	paths, err := e.Search(term)
	if err != nil {
		return nil, Stats{}, err
	}
	afterSearch := e.fs.Stats()

	buf := make([]byte, blockdev.DefaultBlockSize)
	for _, p := range paths {
		if _, err := e.fs.ReadAt(p, buf, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, Stats{}, err
		}
	}
	fsEnd := e.fs.Stats()
	treeEnd := e.tree.Stats()

	st := Stats{
		SearchIndexLevels: treeEnd.LevelsTouched - treeBase.LevelsTouched,
		IndexFileHops:     afterSearch.IndirectHops - fsBase.IndirectHops,
		DirLookups:        fsEnd.DirLookups - afterSearch.DirLookups,
		TargetFileHops:    fsEnd.IndirectHops - afterSearch.IndirectHops,
	}
	return paths, st, nil
}

// DropCaches discards the index pager cache, forcing subsequent searches
// to re-read index pages through the file system (cold-cache runs).
func (e *Engine) DropCaches() error {
	if err := e.pg.Sync(); err != nil {
		return err
	}
	e.pg = pager.New(e.dev, 64, true)
	tree, err := btree.Open(e.pg, e.alloc, e.tree.HeaderPage())
	if err != nil {
		return err
	}
	e.tree = tree
	return nil
}

// IndexTree exposes the btree for experiment accounting.
func (e *Engine) IndexTree() *btree.Tree { return e.tree }
