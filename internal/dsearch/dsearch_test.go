package dsearch

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/hierfs"
)

func newFS(t *testing.T) *hierfs.FS {
	t.Helper()
	dev := blockdev.NewMem(32768, blockdev.DefaultBlockSize)
	fs, err := hierfs.Mkfs(dev, hierfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFileDeviceRoundtrip(t *testing.T) {
	fs := newFS(t)
	dev, err := NewFileDevice(fs, "/dev.img", 64)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, dev.BlockSize())
	p[0] = 42
	if err := dev.WriteBlock(7, p); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Error("file device data mismatch")
	}
	// Unwritten blocks read as zeros (sparse file).
	if err := dev.ReadBlock(50, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("sparse block not zero")
	}
	if err := dev.ReadBlock(64, got); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Errorf("out of range = %v", err)
	}
	if err := dev.WriteBlock(0, make([]byte, 3)); !errors.Is(err, blockdev.ErrBadLength) {
		t.Errorf("bad length = %v", err)
	}
}

func buildCorpus(t *testing.T, fs *hierfs.FS) {
	t.Helper()
	if err := fs.MkdirAll("/home/margo/docs", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/home/nick", 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"/home/margo/docs/fs.txt":  "hierarchical file systems are dead",
		"/home/margo/docs/bdb.txt": "berkeley db stores btrees on disk",
		"/home/nick/notes.txt":     "lucene indexes text with segments",
		"/home/nick/plan.txt":      "port lucene and berkeley db to the raw device",
	}
	for p, content := range files {
		if err := fs.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrawlAndSearch(t *testing.T) {
	fs := newFS(t)
	buildCorpus(t, fs)
	e, err := New(fs, "/index.db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Crawl("/")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("crawled %d docs, want 4", n)
	}
	paths, err := e.Search("lucene")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/home/nick/notes.txt", "/home/nick/plan.txt"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Search(lucene) = %v", paths)
	}
	// Conjunction.
	paths, err = e.Search("lucene", "berkeley")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, []string{"/home/nick/plan.txt"}) {
		t.Errorf("conjunction = %v", paths)
	}
	// Absent term.
	paths, err = e.Search("zfs")
	if err != nil || len(paths) != 0 {
		t.Errorf("absent = %v, %v", paths, err)
	}
}

func TestSearchBeforeCrawl(t *testing.T) {
	fs := newFS(t)
	e, err := New(fs, "/index.db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search("x"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("premature search = %v", err)
	}
}

func TestIndexFileDoesNotIndexItself(t *testing.T) {
	fs := newFS(t)
	buildCorpus(t, fs)
	e, err := New(fs, "/index.db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Crawl("/")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("crawl touched the index file: %d docs", n)
	}
}

func TestSearchToDataCountsTraversals(t *testing.T) {
	fs := newFS(t)
	buildCorpus(t, fs)
	e, err := New(fs, "/index.db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Crawl("/"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropCaches(); err != nil {
		t.Fatal(err)
	}
	paths, st, err := e.SearchToData("hierarchical")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if st.SearchIndexLevels == 0 {
		t.Error("no search-index levels recorded")
	}
	// /home/margo/docs/fs.txt = 4 components.
	if st.DirLookups != 4 {
		t.Errorf("DirLookups = %d, want 4", st.DirLookups)
	}
	// ≥ 4 index traversals, as §2.3 argues.
	if got := st.IndexTraversals(); got < 4 {
		t.Errorf("IndexTraversals = %d, want ≥ 4", got)
	}
}

func TestLargeCorpusAcrossIndexFileIndirection(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/corpus", 0o755); err != nil {
		t.Fatal(err)
	}
	// Enough documents that the index btree spans many file blocks and
	// the index file needs indirect pointers.
	for i := 0; i < 300; i++ {
		content := fmt.Sprintf("document number%d with shared vocabulary alpha beta gamma delta", i)
		if err := fs.WriteFile(fmt.Sprintf("/corpus/d%03d.txt", i), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(fs, "/index.db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Crawl("/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Errorf("crawled %d", n)
	}
	paths, err := e.Search("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 300 {
		t.Errorf("alpha in %d docs, want 300", len(paths))
	}
	paths, err = e.Search("number123")
	if err != nil || len(paths) != 1 {
		t.Errorf("number123 = %v, %v", paths, err)
	}
	// The engine's page reads went through the hierfs file: the file
	// system recorded pointer-walk work on behalf of the index.
	if fs.Stats().IndirectHops == 0 {
		t.Error("index file I/O never walked the file's physical index")
	}
}
