package osd

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/btree"
	"repro/internal/extent"
	"repro/internal/pager"
)

// Object is an open handle to a byte-addressable storage object. The
// access interface mirrors the paper's: read and write are
// POSIX-compatible, and insert and truncate(offset, length) are the two
// extensions the extent representation makes cheap.
//
// Handles to the same OID share state; Close releases the handle.
type Object struct {
	s   *Store
	oid OID
	ext *extent.Tree

	mu     sync.Mutex
	refs   int
	closed bool

	// wmu serializes mutators on this object (handles to one OID share
	// state, so this is per-OID). The extent tree's own lock already
	// serializes tree mutations; wmu additionally orders each mutation
	// with its object-table metadata refresh — without it, two writers
	// could land their meta puts in the opposite order of their tree
	// edits and persist a stale size against the newer tree.
	wmu sync.Mutex
}

// OID returns the object's identifier.
func (o *Object) OID() OID { return o.oid }

// Size returns the object's current byte size.
func (o *Object) Size() uint64 { return o.ext.Size() }

// Stat returns the object's metadata.
func (o *Object) Stat() (Meta, error) { return o.s.Stat(o.oid) }

// ExtentCount reports how many extents back the object.
func (o *Object) ExtentCount() uint64 { return o.ext.ExtentCount() }

// ExtentTree exposes the underlying tree for checking and experiments.
func (o *Object) ExtentTree() *extent.Tree { return o.ext }

// ReadAt reads len(p) bytes at offset off (io.ReaderAt semantics: returns
// io.EOF with a short count at end of object).
func (o *Object) ReadAt(p []byte, off uint64) (int, error) {
	n, err := o.ext.ReadAt(p, off)
	o.s.stats.reads.Add(1)
	return n, err
}

// WriteAt writes p at offset off, growing the object as needed; writes
// past the end create holes (sparse objects).
func (o *Object) WriteAt(p []byte, off uint64) error {
	op, done, err := o.s.beginOp()
	if err != nil {
		return err
	}
	return done(o.writeAt(op, p, off))
}

// WriteAtDeferred is WriteAt without the per-operation commit, for
// callers composing one transaction from several mutations (core.Batch).
func (o *Object) WriteAtDeferred(op *pager.Op, p []byte, off uint64) error {
	return o.writeAt(op, p, off)
}

func (o *Object) writeAt(op *pager.Op, p []byte, off uint64) error {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	err := o.ext.WriteAtOp(op, p, off)
	if err == nil {
		o.s.stats.writes.Add(1)
	}
	return o.finishMutation(op, err)
}

// finishMutation refreshes the object-table metadata even when the
// extent mutation failed part-way: the commit bracket appends the
// staged records regardless (rollback, when it runs, is a separate
// CLR pass over the op's captured inverses), so the partially applied
// tree must be matched by the size the object table records —
// otherwise a crash right after would recover a volume where fsck
// finds the table and the tree disagreeing.
func (o *Object) finishMutation(op *pager.Op, err error) error {
	if merr := o.refreshMeta(op); err == nil {
		err = merr
	}
	return err
}

// Append writes p at the current end of the object.
func (o *Object) Append(p []byte) error {
	op, done, err := o.s.beginOp()
	if err != nil {
		return err
	}
	_, err = o.append(op, p)
	return done(err)
}

// AppendDeferred is Append without the per-operation commit (core.Batch).
// It returns the object's size after the append.
func (o *Object) AppendDeferred(op *pager.Op, p []byte) (uint64, error) {
	return o.append(op, p)
}

// append resolves the end offset and writes atomically (extent.Tree
// AppendOp holds the tree lock across both), so concurrent appends to
// one OID — e.g. two ingest workers batching the same hot object —
// serialize instead of computing the same end offset and losing one
// acked write.
func (o *Object) append(op *pager.Op, p []byte) (uint64, error) {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	size, err := o.ext.AppendOp(op, p)
	if err == nil {
		o.s.stats.writes.Add(1)
	}
	return size, o.finishMutation(op, err)
}

// InsertAt inserts p at offset off, shifting later bytes up — the paper's
// insert call ("arguments identical to the write call, but instead of
// overwriting bytes ... it inserts those bytes, growing the file").
func (o *Object) InsertAt(off uint64, p []byte) error {
	op, done, err := o.s.beginOp()
	if err != nil {
		return err
	}
	return done(o.insertAt(op, off, p))
}

// InsertAtDeferred is InsertAt without the per-operation commit.
func (o *Object) InsertAtDeferred(op *pager.Op, off uint64, p []byte) error {
	return o.insertAt(op, off, p)
}

func (o *Object) insertAt(op *pager.Op, off uint64, p []byte) error {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	err := o.ext.InsertAtOp(op, off, p)
	if err == nil {
		o.s.stats.inserts.Add(1)
	}
	return o.finishMutation(op, err)
}

// TruncateRange removes length bytes at offset off, shifting later bytes
// down — the paper's two-off_t truncate ("an offset and length, indicating
// exactly which bytes to remove from the file").
func (o *Object) TruncateRange(off, length uint64) error {
	op, done, err := o.s.beginOp()
	if err != nil {
		return err
	}
	return done(o.truncateRange(op, off, length))
}

// TruncateRangeDeferred is TruncateRange without the per-operation commit.
func (o *Object) TruncateRangeDeferred(op *pager.Op, off, length uint64) error {
	return o.truncateRange(op, off, length)
}

func (o *Object) truncateRange(op *pager.Op, off, length uint64) error {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	err := o.ext.DeleteRangeOp(op, off, length)
	if err == nil {
		o.s.stats.deleteRanges.Add(1)
	}
	return o.finishMutation(op, err)
}

// Truncate sets the object's size (POSIX-style single-argument form).
func (o *Object) Truncate(size uint64) error {
	op, done, err := o.s.beginOp()
	if err != nil {
		return err
	}
	o.wmu.Lock()
	err = o.finishMutation(op, o.ext.TruncateOp(op, size))
	o.wmu.Unlock()
	return done(err)
}

// refreshMeta updates size/mtime in the object table (no commit; the
// enclosing operation bracket owns that).
func (o *Object) refreshMeta(op *pager.Op) error {
	size := o.ext.Size()
	now := o.s.now()
	return o.s.updateMetaNoCommit(op, o.oid, func(m *Meta) {
		m.Size = size
		m.Mtime = now
	})
}

// updateMetaNoCommit is updateMeta without the commit bracket, for
// callers that batch the commit themselves.
func (s *Store) updateMetaNoCommit(op *pager.Op, oid OID, f func(*Meta)) error {
	v, err := s.meta.Get(oidKey(oid))
	if errors.Is(err, btree.ErrNotFound) {
		return fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	if err != nil {
		return err
	}
	m, err := decodeMeta(v)
	if err != nil {
		return err
	}
	f(&m)
	if err := s.meta.PutOp(op, oidKey(oid), encodeMeta(&m)); err != nil {
		return err
	}
	return s.writeShadowMeta(op, &m)
}

// Close releases the handle; the last close detaches the shared state.
func (o *Object) Close() error {
	o.s.mu.Lock()
	defer o.s.mu.Unlock()
	if o.closed {
		return nil
	}
	o.refs--
	if o.refs <= 0 {
		o.closed = true
		delete(o.s.open, o.oid)
	}
	return nil
}
