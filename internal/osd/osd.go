// Package osd implements hFAD's object-based storage device layer: "the
// abstraction of a uniquely identified container of bytes", where each
// container carries metadata (security attributes, access and modified
// times, size) and — unlike traditional OSDs — is fully byte-accessible:
// bytes can be read, overwritten, inserted into the middle, and removed
// from the middle.
//
// Objects are backed by counted extent trees (package extent). Object
// metadata lives in two places, following the paper's implementation
// sketch: authoritative copies in a global OID→metadata btree ("we use BDB
// Btrees to map unique object IDs (OID) to the meta-data for an object"),
// and a redundant copy under the NULL slot of the object's own tree header
// page ("we use a NULL key value in the Btree to store the meta-data
// associated with an object"), which fsck cross-checks.
//
// Transactionality is optional, exactly as the paper frames it: the store
// accepts a commit hook; when the volume wires it to a WAL, every mutating
// operation commits its dirty metadata pages. Experiment E10 measures the
// cost of turning that decision on.
package osd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/buddy"
	"repro/internal/extent"
	"repro/internal/pager"
	"repro/internal/redo"
	"repro/internal/undo"
)

// OID uniquely identifies an object.
type OID uint64

// Errors.
var (
	ErrNotFound = errors.New("osd: object not found")
	ErrCorrupt  = errors.New("osd: corrupt metadata")
)

// Mode bits. The OSD itself is data-agnostic; these exist so layered
// naming systems (POSIX) can persist type/permission bits with the object.
const (
	ModeRegular  uint32 = 0o100000
	ModeDir      uint32 = 0o040000
	ModePermMask uint32 = 0o7777
)

// Meta is an object's metadata record.
type Meta struct {
	OID          OID
	Size         uint64
	Mode         uint32
	Owner        string // the paper's security attribute / USER tag source
	Atime        int64  // unix nanoseconds
	Mtime        int64
	Ctime        int64
	ExtentHeader uint64 // header page of the object's extent tree
}

const metaFixedSize = 8 + 8 + 4 + 8 + 8 + 8 + 8 + 2 // + owner bytes

func encodeMeta(m *Meta) []byte {
	out := make([]byte, metaFixedSize+len(m.Owner))
	binary.LittleEndian.PutUint64(out[0:], uint64(m.OID))
	binary.LittleEndian.PutUint64(out[8:], m.Size)
	binary.LittleEndian.PutUint32(out[16:], m.Mode)
	binary.LittleEndian.PutUint64(out[20:], uint64(m.Atime))
	binary.LittleEndian.PutUint64(out[28:], uint64(m.Mtime))
	binary.LittleEndian.PutUint64(out[36:], uint64(m.Ctime))
	binary.LittleEndian.PutUint64(out[44:], m.ExtentHeader)
	binary.LittleEndian.PutUint16(out[52:], uint16(len(m.Owner)))
	copy(out[54:], m.Owner)
	return out
}

func decodeMeta(b []byte) (Meta, error) {
	if len(b) < metaFixedSize {
		return Meta{}, fmt.Errorf("%w: meta record %d bytes", ErrCorrupt, len(b))
	}
	m := Meta{
		OID:          OID(binary.LittleEndian.Uint64(b[0:])),
		Size:         binary.LittleEndian.Uint64(b[8:]),
		Mode:         binary.LittleEndian.Uint32(b[16:]),
		Atime:        int64(binary.LittleEndian.Uint64(b[20:])),
		Mtime:        int64(binary.LittleEndian.Uint64(b[28:])),
		Ctime:        int64(binary.LittleEndian.Uint64(b[36:])),
		ExtentHeader: binary.LittleEndian.Uint64(b[44:]),
	}
	olen := int(binary.LittleEndian.Uint16(b[52:]))
	if metaFixedSize+olen > len(b) {
		return Meta{}, fmt.Errorf("%w: owner overruns record", ErrCorrupt)
	}
	m.Owner = string(b[54 : 54+olen])
	return m, nil
}

func oidKey(oid OID) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(oid))
	return k[:]
}

// seqKey is the NULL key of the object table, holding the OID sequence —
// the same trick the paper uses for per-object metadata.
var seqKey = []byte{}

// Options configures a Store.
type Options struct {
	// Begin, when non-nil, brackets every mutating operation: it is
	// invoked before the operation's first page mutation, returning the
	// operation's redo capture (threaded through every page mutation so
	// each structure layer logs exactly this operation's edits) and the
	// commit function invoked with the operation's outcome after its
	// last mutation. A non-nil error refuses the bracket — the volume is
	// read-only (degraded) — and the operation must fail before touching
	// any page. The volume wires this to physiological redo capture
	// and WAL group commit; the capture is nil in the page-image logging
	// modes. Nil means non-transactional.
	Begin func() (*pager.Op, func(error) error, error)
	// ExtentConfig tunes the per-object extent trees.
	ExtentConfig extent.Config
	// Clock supplies timestamps; nil uses time.Now. Tests inject fakes.
	Clock func() time.Time
}

// Stats is a point-in-time snapshot of store-level operation counters.
type Stats struct {
	Objects      uint64
	Creates      int64
	Deletes      int64
	Reads        int64
	Writes       int64
	Inserts      int64
	DeleteRanges int64
	Commits      int64
}

// counters holds the live operation counters. Every field is an atomic:
// stats are scraped concurrently with the operations that mutate them
// (the hfadd /metrics endpoint reads while writers write), and the hot
// write path should not serialize on a stats mutex.
type counters struct {
	creates      atomic.Int64
	deletes      atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
	inserts      atomic.Int64
	deleteRanges atomic.Int64
	commits      atomic.Int64
}

// Store is the OSD: a table of byte-addressable objects.
type Store struct {
	pg   *pager.Pager
	ba   *buddy.Allocator
	opts Options
	meta *btree.Tree

	mu      sync.Mutex
	nextOID OID
	open    map[OID]*Object
	// seqMu orders persistSeq's snapshot-and-put: without it, two
	// concurrent creators could persist their snapshots out of order and
	// a stale (smaller) sequence would win, re-issuing OIDs after reopen.
	seqMu sync.Mutex

	stats counters
}

// Create initializes a new store on the volume.
func Create(pg *pager.Pager, ba *buddy.Allocator, opts Options) (*Store, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	mt, err := btree.Create(pg, pageAlloc{ba})
	if err != nil {
		return nil, err
	}
	s := &Store{pg: pg, ba: ba, opts: opts, meta: mt, nextOID: 1, open: make(map[OID]*Object)}
	if err := s.persistSeq(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads a store from its object-table header page.
func Open(pg *pager.Pager, ba *buddy.Allocator, headerPno uint64, opts Options) (*Store, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	mt, err := btree.Open(pg, pageAlloc{ba}, headerPno)
	if err != nil {
		return nil, err
	}
	s := &Store{pg: pg, ba: ba, opts: opts, meta: mt, open: make(map[OID]*Object)}
	v, err := mt.Get(seqKey)
	if err != nil {
		return nil, fmt.Errorf("%w: missing OID sequence: %v", ErrCorrupt, err)
	}
	s.nextOID = OID(binary.LittleEndian.Uint64(v))
	return s, nil
}

// pageAlloc adapts buddy to btree page allocation.
type pageAlloc struct{ ba *buddy.Allocator }

func (a pageAlloc) AllocPage() (uint64, error) { return a.ba.Alloc(1) }
func (a pageAlloc) FreePage(no uint64) error   { return a.ba.Free(no, 1) }

// HeaderPage identifies the store for reopening.
func (s *Store) HeaderPage() uint64 { return s.meta.HeaderPage() }

func (s *Store) persistSeq(op *pager.Op) error {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	s.mu.Lock()
	next := s.nextOID
	s.mu.Unlock()
	// Concurrent creators may persist a value past their own allocation;
	// the sequence only ever needs to be ≥ every issued OID, and seqMu
	// guarantees the last write carries the largest snapshot (put order
	// under seqMu is LSN order, so replay keeps the largest too).
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(next))
	return s.meta.PutOp(op, seqKey, v[:])
}

// beginOp opens the transactional bracket for one mutating operation and
// returns its redo capture plus the function that commits (or, on a
// non-nil operation error, aborts) it. With no Begin hook all parts are
// no-ops.
func (s *Store) beginOp() (*pager.Op, func(error) error, error) {
	if s.opts.Begin == nil {
		return nil, func(err error) error { return err }, nil
	}
	op, done, err := s.opts.Begin()
	if err != nil {
		return nil, nil, err
	}
	return op, func(opErr error) error {
		err := done(opErr)
		if opErr == nil && err == nil {
			s.stats.commits.Add(1)
		}
		return err
	}, nil
}

func (s *Store) now() int64 { return s.opts.Clock().UnixNano() }

// Stats returns a snapshot of store counters, safe to call concurrently
// with any operation. Objects is computed from the table.
func (s *Store) Stats() Stats {
	st := Stats{
		Creates:      s.stats.creates.Load(),
		Deletes:      s.stats.deletes.Load(),
		Reads:        s.stats.reads.Load(),
		Writes:       s.stats.writes.Load(),
		Inserts:      s.stats.inserts.Load(),
		DeleteRanges: s.stats.deleteRanges.Load(),
		Commits:      s.stats.commits.Load(),
	}
	n := s.meta.Len()
	if n > 0 {
		n-- // exclude the sequence record
	}
	st.Objects = n
	return st
}

// CreateObject allocates a fresh object owned by owner with the given
// mode bits and returns an open handle. The whole allocation commits as
// one transaction.
func (s *Store) CreateObject(owner string, mode uint32) (*Object, error) {
	op, done, err := s.beginOp()
	if err != nil {
		return nil, err
	}
	obj, err := s.createObject(op, owner, mode)
	if err := done(err); err != nil {
		return nil, err
	}
	return obj, nil
}

// CreateObjectDeferred is CreateObject without the per-operation commit;
// callers composing several operations into one transaction (core.Batch)
// bracket the whole composition themselves and pass its redo capture.
func (s *Store) CreateObjectDeferred(op *pager.Op, owner string, mode uint32) (*Object, error) {
	return s.createObject(op, owner, mode)
}

func (s *Store) createObject(op *pager.Op, owner string, mode uint32) (*Object, error) {
	ext, err := extent.CreateOp(s.pg, s.ba, s.opts.ExtentConfig, op)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	oid := s.nextOID
	s.nextOID++
	s.mu.Unlock()
	now := s.now()
	m := Meta{
		OID: oid, Mode: mode, Owner: owner,
		Atime: now, Mtime: now, Ctime: now,
		ExtentHeader: ext.HeaderPage(),
	}
	if err := s.meta.PutOp(op, oidKey(oid), encodeMeta(&m)); err != nil {
		return nil, err
	}
	if err := s.persistSeq(op); err != nil {
		return nil, err
	}
	if err := s.writeShadowMeta(op, &m); err != nil {
		return nil, err
	}
	obj := &Object{s: s, oid: oid, ext: ext, refs: 1}
	s.mu.Lock()
	s.open[oid] = obj
	s.mu.Unlock()
	// Staged last so a rollback runs it *first* (undo executes
	// newest-first): the destroy reclaims the extent tree and deletes the
	// meta row while both still exist; the older inverses the row put and
	// shadow write captured then find the row already gone, which the
	// undo executor tolerates.
	op.StageUndo(undo.ObjDestroy(uint64(oid)))
	s.stats.creates.Add(1)
	return obj, nil
}

// OpenObject returns a handle to an existing object. Handles to the same
// OID share one extent tree so concurrent access stays coherent. Each
// OpenObject must be balanced by Close.
func (s *Store) OpenObject(oid OID) (*Object, error) {
	s.mu.Lock()
	if obj, ok := s.open[oid]; ok {
		obj.refs++
		s.mu.Unlock()
		return obj, nil
	}
	s.mu.Unlock()

	m, err := s.Stat(oid)
	if err != nil {
		return nil, err
	}
	ext, err := extent.Open(s.pg, s.ba, m.ExtentHeader, s.opts.ExtentConfig)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.open[oid]; ok { // lost a race; use the winner
		obj.refs++
		return obj, nil
	}
	obj := &Object{s: s, oid: oid, ext: ext, refs: 1}
	s.open[oid] = obj
	return obj, nil
}

// Stat returns the object's metadata.
func (s *Store) Stat(oid OID) (Meta, error) {
	v, err := s.meta.Get(oidKey(oid))
	if errors.Is(err, btree.ErrNotFound) {
		return Meta{}, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	if err != nil {
		return Meta{}, err
	}
	return decodeMeta(v)
}

// SetMode updates the object's mode bits.
func (s *Store) SetMode(oid OID, mode uint32) error {
	return s.updateMeta(oid, func(m *Meta) { m.Mode = mode; m.Ctime = s.now() })
}

// SetOwner updates the object's owner.
func (s *Store) SetOwner(oid OID, owner string) error {
	return s.updateMeta(oid, func(m *Meta) { m.Owner = owner; m.Ctime = s.now() })
}

// SetTimes overrides the access and modification times (for archival
// tools); zero values leave the field unchanged.
func (s *Store) SetTimes(oid OID, atime, mtime int64) error {
	return s.updateMeta(oid, func(m *Meta) {
		if atime != 0 {
			m.Atime = atime
		}
		if mtime != 0 {
			m.Mtime = mtime
		}
		m.Ctime = s.now()
	})
}

func (s *Store) updateMeta(oid OID, f func(*Meta)) error {
	op, done, err := s.beginOp()
	if err != nil {
		return err
	}
	return done(s.updateMetaNoCommit(op, oid, f))
}

// shadowMetaOff is where the redundant metadata copy lives in the extent
// tree's header page (past the tree's own fields).
const shadowMetaOff = 64

// writeShadowMeta stores the paper's NULL-key metadata copy in the
// object's own header page, staging it as an absolute byte-range record
// — the ~60 logical bytes of the edit, where the retired image route
// logged the whole 4 KiB header page per operation.
func (s *Store) writeShadowMeta(op *pager.Op, m *Meta) error {
	pg, err := s.pg.Acquire(m.ExtentHeader)
	if err != nil {
		return err
	}
	defer s.pg.Release(pg)
	enc := encodeMeta(m)
	d := pg.Data()
	if shadowMetaOff+2+len(enc) > len(d) {
		return fmt.Errorf("%w: shadow meta too large", ErrCorrupt)
	}
	rec := make([]byte, 2+len(enc))
	binary.LittleEndian.PutUint16(rec, uint16(len(enc)))
	copy(rec[2:], enc)
	if op.UndoEnabled() {
		// Before-image of exactly the span the redo record overwrites:
		// restoring it restores the old length prefix, so a longer old
		// record's untouched tail reads back intact.
		old := append([]byte(nil), d[shadowMetaOff:shadowMetaOff+len(rec)]...)
		op.StageUndo(undo.Range(m.ExtentHeader, shadowMetaOff, old))
	}
	copy(d[shadowMetaOff:], rec)
	s.pg.MarkDirtyRec(pg, op, redo.KindRange, redo.EncodeRange(shadowMetaOff, rec))
	return nil
}

// ShadowMeta reads the redundant metadata copy from the object's header
// page; fsck compares it with the object table.
func (s *Store) ShadowMeta(extentHeader uint64) (Meta, error) {
	pg, err := s.pg.Acquire(extentHeader)
	if err != nil {
		return Meta{}, err
	}
	defer s.pg.Release(pg)
	d := pg.Data()
	n := int(binary.LittleEndian.Uint16(d[shadowMetaOff:]))
	if n == 0 || shadowMetaOff+2+n > len(d) {
		return Meta{}, fmt.Errorf("%w: missing shadow meta", ErrCorrupt)
	}
	return decodeMeta(d[shadowMetaOff+2 : shadowMetaOff+2+n])
}

// RepairSize rewrites the object's recorded size (table row and shadow
// copy) without a commit bracket. Crash recovery's extent recount calls
// it when a tree's recomputed size disagrees with the absolute value
// replay recovered, so the volume's own fsck cross-check (table size vs
// tree bytes) holds after the repair.
func (s *Store) RepairSize(oid OID, size uint64) error {
	return s.updateMetaNoCommit(nil, oid, func(m *Meta) { m.Size = size })
}

// DeleteObject destroys the object and releases all its storage. Open
// handles become invalid.
func (s *Store) DeleteObject(oid OID) error {
	op, done, err := s.beginOp()
	if err != nil {
		return err
	}
	return done(s.deleteObject(op, oid))
}

// DeleteObjectDeferred is DeleteObject without the per-operation commit,
// for callers composing a larger transaction (the volume's name-stripping
// delete, core.Batch).
func (s *Store) DeleteObjectDeferred(op *pager.Op, oid OID) error {
	return s.deleteObject(op, oid)
}

func (s *Store) deleteObject(op *pager.Op, oid OID) error {
	// Destruction has no inverse (the freed extents may be reallocated),
	// so none of the section's mutations capture undo: rolling back half
	// of it would resurrect a meta row pointing at a destroyed tree. A
	// delete inside an aborted bracket therefore stays applied — the
	// documented non-atomicity of destructive frees.
	defer op.SuspendUndo()()
	m, err := s.Stat(oid)
	if err != nil {
		return err
	}
	s.mu.Lock()
	obj, wasOpen := s.open[oid]
	delete(s.open, oid)
	s.mu.Unlock()

	var ext *extent.Tree
	if wasOpen {
		ext = obj.ext
	} else {
		ext, err = extent.Open(s.pg, s.ba, m.ExtentHeader, s.opts.ExtentConfig)
		if err != nil {
			return err
		}
	}
	if err := ext.Destroy(); err != nil {
		return err
	}
	if err := s.meta.DeleteOp(op, oidKey(oid)); err != nil {
		return err
	}
	s.stats.deletes.Add(1)
	return nil
}

// LookupByHeader resolves the OID whose extent tree is rooted at the
// given header page — the reverse of Meta.ExtentHeader. Open handles
// are checked first (the common case during a runtime abort); otherwise
// the object table is scanned. The recovery undo executor uses it to
// route extent inverses, which address trees by header page, through
// the object layer so metadata stays in step.
func (s *Store) LookupByHeader(hdr uint64) (OID, error) {
	s.mu.Lock()
	for oid, obj := range s.open {
		if obj.ext.HeaderPage() == hdr {
			s.mu.Unlock()
			return oid, nil
		}
	}
	s.mu.Unlock()
	var found OID
	ok := false
	if err := s.ForEach(func(m Meta) bool {
		if m.ExtentHeader == hdr {
			found, ok = m.OID, true
			return false
		}
		return true
	}); err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: no object with header page %d", ErrNotFound, hdr)
	}
	return found, nil
}

// ForEach visits every object's metadata in OID order.
func (s *Store) ForEach(fn func(Meta) bool) error {
	var inner error
	err := s.meta.Scan([]byte{0}, nil, func(k, v []byte) bool {
		m, err := decodeMeta(v)
		if err != nil {
			inner = err
			return false
		}
		return fn(m)
	})
	if inner != nil {
		return inner
	}
	return err
}

// Sync flushes store metadata through the pager.
func (s *Store) Sync() error {
	if err := s.meta.Sync(); err != nil {
		return err
	}
	return s.pg.Sync()
}

// MetaTree exposes the object table for volume-level checking.
func (s *Store) MetaTree() *btree.Tree { return s.meta }
