package osd

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/buddy"
	"repro/internal/pager"
)

type env struct {
	dev *blockdev.MemDevice
	pg  *pager.Pager
	ba  *buddy.Allocator
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dev := blockdev.NewMem(16384, blockdev.DefaultBlockSize)
	return &env{dev: dev, pg: pager.New(dev, 512, true), ba: buddy.New(1, 16383)}
}

func newStore(t *testing.T, opts Options) (*Store, *env) {
	t.Helper()
	e := newEnv(t)
	s, err := Create(e.pg, e.ba, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s, e
}

func TestCreateObjectAssignsUniqueOIDs(t *testing.T) {
	s, _ := newStore(t, Options{})
	seen := map[OID]bool{}
	for i := 0; i < 100; i++ {
		obj, err := s.CreateObject("margo", ModeRegular|0o644)
		if err != nil {
			t.Fatalf("CreateObject: %v", err)
		}
		if seen[obj.OID()] {
			t.Fatalf("duplicate OID %d", obj.OID())
		}
		seen[obj.OID()] = true
		if err := obj.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Objects; got != 100 {
		t.Errorf("Objects = %d, want 100", got)
	}
}

func TestObjectReadWrite(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("nick", ModeRegular|0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("hfad"), 1000)
	if err := obj.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if obj.Size() != 4000 {
		t.Errorf("Size = %d", obj.Size())
	}
	got := make([]byte, 4000)
	if _, err := obj.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	m, err := obj.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 4000 || m.Owner != "nick" {
		t.Errorf("meta = %+v", m)
	}
}

func TestInsertAndTruncateRange(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := obj.InsertAt(5, []byte(" brave")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, obj.Size())
	if _, err := obj.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "hello brave world" {
		t.Errorf("after insert: %q", got)
	}
	if err := obj.TruncateRange(5, 6); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, obj.Size())
	if _, err := obj.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Errorf("after truncate-range: %q", got)
	}
}

func TestMtimeAdvancesOnWrite(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, _ := newStore(t, Options{Clock: clock})
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := obj.Stat()
	now = now.Add(5 * time.Second)
	if err := obj.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	m2, _ := obj.Stat()
	if m2.Mtime <= m1.Mtime {
		t.Errorf("mtime did not advance: %d -> %d", m1.Mtime, m2.Mtime)
	}
}

func TestStatMissing(t *testing.T) {
	s, _ := newStore(t, Options{})
	if _, err := s.Stat(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("Stat(999) = %v, want ErrNotFound", err)
	}
	if _, err := s.OpenObject(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("OpenObject(999) = %v, want ErrNotFound", err)
	}
}

func TestOpenObjectSharesState(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	oid := obj.OID()
	h2, err := s.OpenObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != obj {
		t.Error("second handle is not the shared object")
	}
	if err := obj.WriteAt([]byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := h2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Errorf("second handle read %q", got)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after full close works.
	h3, err := s.OpenObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	if h3.Size() != 6 {
		t.Errorf("reopened size = %d", h3.Size())
	}
}

func TestDeleteObjectFreesStorage(t *testing.T) {
	s, e := newStore(t, Options{})
	free0 := e.ba.FreeBlocks()
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt(bytes.Repeat([]byte("z"), 200000), 0); err != nil {
		t.Fatal(err)
	}
	oid := obj.OID()
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteObject(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(oid); !errors.Is(err, ErrNotFound) {
		t.Error("deleted object still stats")
	}
	// All extent blocks must return (the object table itself keeps a
	// few pages).
	leaked := free0 - e.ba.FreeBlocks()
	if leaked > 8 {
		t.Errorf("delete leaked %d blocks", leaked)
	}
}

func TestUpdateMetaFields(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("alice", ModeRegular|0o600)
	if err != nil {
		t.Fatal(err)
	}
	oid := obj.OID()
	if err := s.SetMode(oid, ModeRegular|0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOwner(oid, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTimes(oid, 111, 222); err != nil {
		t.Fatal(err)
	}
	m, err := s.Stat(oid)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode != ModeRegular|0o755 || m.Owner != "bob" || m.Atime != 111 || m.Mtime != 222 {
		t.Errorf("meta = %+v", m)
	}
}

func TestShadowMetaMatchesTable(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("carol", ModeRegular|0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt([]byte("some data"), 0); err != nil {
		t.Fatal(err)
	}
	m, err := obj.Stat()
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := s.ShadowMeta(m.ExtentHeader)
	if err != nil {
		t.Fatalf("ShadowMeta: %v", err)
	}
	if shadow.OID != m.OID || shadow.Size != m.Size || shadow.Owner != m.Owner {
		t.Errorf("shadow %+v != table %+v", shadow, m)
	}
}

func TestForEachOrdered(t *testing.T) {
	s, _ := newStore(t, Options{})
	for i := 0; i < 10; i++ {
		obj, err := s.CreateObject("u", ModeRegular)
		if err != nil {
			t.Fatal(err)
		}
		obj.Close()
	}
	var oids []OID
	if err := s.ForEach(func(m Meta) bool {
		oids = append(oids, m.OID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(oids) != 10 {
		t.Fatalf("ForEach visited %d, want 10", len(oids))
	}
	for i := 1; i < len(oids); i++ {
		if oids[i] <= oids[i-1] {
			t.Fatal("ForEach not in OID order")
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	e := newEnv(t)
	s, err := Create(e.pg, e.ba, Options{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.CreateObject("dave", ModeRegular|0o644)
	if err != nil {
		t.Fatal(err)
	}
	oid := obj.OID()
	if err := obj.WriteAt([]byte("durable bytes"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	pg2 := pager.New(e.dev, 256, true)
	s2, err := Open(pg2, e.ba, s.HeaderPage(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	obj2, err := s2.OpenObject(oid)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if _, err := obj2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "durable bytes" {
		t.Errorf("reopened read %q", got)
	}
	// New objects must not collide with pre-restart OIDs.
	obj3, err := s2.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	if obj3.OID() <= oid {
		t.Errorf("OID sequence regressed: %d after %d", obj3.OID(), oid)
	}
}

func TestCommitHookFires(t *testing.T) {
	begins, commits := 0, 0
	s, _ := newStore(t, Options{Begin: func() (*pager.Op, func(error) error, error) {
		begins++
		return nil, func(err error) error { commits++; return err }, nil
	}})
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	if commits == 0 {
		t.Fatal("no commit after create")
	}
	base := commits
	if err := obj.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if commits <= base {
		t.Error("no commit after write")
	}
	if begins != commits {
		t.Errorf("begins = %d, commits = %d: unbalanced op brackets", begins, commits)
	}
	if got := s.Stats().Commits; int(got) != commits {
		t.Errorf("Stats.Commits = %d, hook ran %d times", got, commits)
	}
}

func TestStatsCounters(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, _ := s.CreateObject("u", ModeRegular)
	_ = obj.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 3)
	_, _ = obj.ReadAt(buf, 0)
	_ = obj.InsertAt(1, []byte("z"))
	_ = obj.TruncateRange(0, 1)
	st := s.Stats()
	if st.Creates != 1 || st.Writes != 1 || st.Reads != 1 || st.Inserts != 1 || st.DeleteRanges != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSparseObject(t *testing.T) {
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("u", ModeRegular)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt([]byte("end"), 1<<20); err != nil {
		t.Fatal(err)
	}
	if obj.Size() != 1<<20+3 {
		t.Errorf("Size = %d", obj.Size())
	}
	buf := make([]byte, 10)
	if _, err := obj.ReadAt(buf, 512); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

// TestConcurrentAppendsResolveDistinctOffsets: concurrent Appends to one
// object must each land at a distinct end offset. The append offset is
// resolved inside the extent tree's lock (extent.Tree.AppendOp);
// resolving it with a separate Size() call lets two appenders pick the
// same offset, and one acked write overwrites the other.
func TestConcurrentAppendsResolveDistinctOffsets(t *testing.T) {
	// Force real interleaving even on single-core runners — with
	// GOMAXPROCS=1 the stale-offset window essentially never splits
	// across a preemption and the race goes undetected.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s, _ := newStore(t, Options{})
	obj, err := s.CreateObject("hot", ModeRegular|0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	const writers = 8
	const perWriter = 200
	const chunk = 32
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, chunk)
			for i := range payload {
				payload[i] = byte(w + 1)
			}
			for i := 0; i < perWriter; i++ {
				if err := obj.Append(payload); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const want = writers * perWriter * chunk
	if got := obj.Size(); got != want {
		t.Fatalf("size = %d, want %d (lost update)", got, want)
	}
	buf := make([]byte, want)
	if _, err := obj.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	counts := make(map[byte]int)
	for off := 0; off < want; off += chunk {
		fill := buf[off]
		for _, b := range buf[off : off+chunk] {
			if b != fill {
				t.Fatalf("torn append at offset %d", off)
			}
		}
		counts[fill]++
	}
	for w := 0; w < writers; w++ {
		if got := counts[byte(w+1)]; got != perWriter {
			t.Fatalf("writer %d: %d of %d appends survived", w, got, perWriter)
		}
	}
}
