// Package hierfs is the hierarchical baseline: a deliberately faithful
// FFS-style file system (McKusick et al. 1984) against which the hFAD
// experiments compare. It exists because the paper's arguments are
// relative — fewer index traversals than a hierarchy (§2.3), no shared-
// ancestor locking (§2.3), no O(n) middle-of-file edits (§3.1.2) — so the
// repository needs the thing being argued against, built on the same
// simulated device.
//
// Faithful pieces:
//
//   - superblock, block bitmap, fixed inode table
//   - inodes with 12 direct pointers, one single-indirect, one
//     double-indirect
//   - directories as linear entry lists in file data blocks
//   - cylinder-group-preferenced allocation (an inode's blocks are placed
//     near its group, as FFS clusters directories)
//   - per-inode read/write locks: path resolution read-locks every
//     ancestor directory — the §2.3 concurrency bottleneck, measurably
//   - end-only truncate; InsertAt exists only as the honest
//     read-shift-rewrite helper the comparison needs
//
// Metadata (superblock, bitmap, inode table, directories, indirect
// blocks) goes through a pager, matching the cache hFAD's metadata gets;
// file data I/O hits the device directly, as in the hFAD OSD.
package hierfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/pager"
)

// Errors.
var (
	ErrNotExist   = errors.New("hierfs: no such file or directory")
	ErrExist      = errors.New("hierfs: file exists")
	ErrNotDir     = errors.New("hierfs: not a directory")
	ErrIsDir      = errors.New("hierfs: is a directory")
	ErrNotEmpty   = errors.New("hierfs: directory not empty")
	ErrNoSpace    = errors.New("hierfs: no space left")
	ErrNoInodes   = errors.New("hierfs: out of inodes")
	ErrFileTooBig = errors.New("hierfs: file exceeds maximum size")
	ErrInvalid    = errors.New("hierfs: invalid argument")
	ErrCorrupt    = errors.New("hierfs: corrupt filesystem")
)

// Mode bits (same values as the OSD's for easy comparison).
const (
	ModeRegular uint32 = 0o100000
	ModeDir     uint32 = 0o040000
	ModePerm    uint32 = 0o7777
)

const (
	sbMagic   = 0x46465321 // "FFS!"
	rootIno   = 1
	inodeSize = 256
	ndirect   = 12
)

// Superblock layout (block 0).
type superblock struct {
	blockSize  uint32
	nblocks    uint64
	ninodes    uint64
	itabStart  uint64
	itabBlocks uint64
	bmapStart  uint64
	bmapBlocks uint64
	dataStart  uint64
	ngroups    uint64
}

// inode is the on-disk inode, decoded.
type inode struct {
	Mode      uint32
	Nlink     uint32
	Size      uint64
	Atime     int64
	Mtime     int64
	Ctime     int64
	Direct    [ndirect]uint64
	Indirect  uint64
	DIndirect uint64
	// Group is the cylinder group this inode's blocks prefer. FFS policy:
	// directories are spread across groups; files inherit their parent
	// directory's group so a directory's files cluster together.
	Group uint32
}

// Stats counts the operations the experiments measure.
type Stats struct {
	DirLookups        int64 // path components resolved
	DirEntriesScanned int64
	InodeReads        int64
	IndirectHops      int64 // indirect-block pointer chases
	BlockAllocs       int64
	GroupHits         int64 // allocations placed in the preferred group
	ShiftBytes        int64 // bytes moved by InsertAt's read-shift-rewrite
	LockAcquires      int64 // directory locks taken during resolution
}

// Config tunes mkfs.
type Config struct {
	NInodes uint64 // default: one per 8 data blocks
	NGroups uint64 // cylinder groups (default 8)
	// Clock injects timestamps; nil = time.Now.
	Clock func() time.Time
}

// FS is an open hierarchical file system.
type FS struct {
	dev   blockdev.Device
	pg    *pager.Pager
	sb    superblock
	clock func() time.Time

	// allocMu guards the bitmap and inode allocation.
	allocMu sync.Mutex
	inoHint uint64 // next-free-inode scan hint
	// ilocks holds one lock per inode, indexed by ino. The resolution
	// path read-locks every ancestor: the hierarchical hotspot.
	ilocks []sync.RWMutex

	statMu sync.Mutex
	stats  Stats
}

// Mkfs formats the device and returns the mounted filesystem.
func Mkfs(dev blockdev.Device, cfg Config) (*FS, error) {
	bs := uint64(dev.BlockSize())
	total := dev.NumBlocks()
	if total < 64 {
		return nil, fmt.Errorf("%w: %d blocks", ErrInvalid, total)
	}
	if cfg.NGroups == 0 {
		cfg.NGroups = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	// Provisional geometry: bitmap covers all blocks; inode table sized
	// from the data that remains.
	bmapBlocks := (total + bs*8 - 1) / (bs * 8)
	if cfg.NInodes == 0 {
		cfg.NInodes = total / 8
	}
	inodesPerBlock := bs / inodeSize
	itabBlocks := (cfg.NInodes + inodesPerBlock - 1) / inodesPerBlock
	sb := superblock{
		blockSize:  uint32(bs),
		nblocks:    total,
		ninodes:    cfg.NInodes,
		itabStart:  1,
		itabBlocks: itabBlocks,
		bmapStart:  1 + itabBlocks,
		bmapBlocks: bmapBlocks,
		dataStart:  1 + itabBlocks + bmapBlocks,
		ngroups:    cfg.NGroups,
	}
	if sb.dataStart+16 >= total {
		return nil, fmt.Errorf("%w: geometry leaves no data blocks", ErrInvalid)
	}
	fs := &FS{
		dev:    dev,
		pg:     pager.New(dev, 1024, true),
		sb:     sb,
		clock:  cfg.Clock,
		ilocks: make([]sync.RWMutex, cfg.NInodes+1),
	}
	if err := fs.writeSuperblock(); err != nil {
		return nil, err
	}
	// Zero the bitmap and inode table.
	zero := make([]byte, bs)
	for b := sb.itabStart; b < sb.dataStart; b++ {
		if err := dev.WriteBlock(b, zero); err != nil {
			return nil, err
		}
	}
	// Mark metadata blocks as allocated in the bitmap.
	for b := uint64(0); b < sb.dataStart; b++ {
		if err := fs.bitmapSet(b, true); err != nil {
			return nil, err
		}
	}
	// Root directory.
	now := cfg.Clock().UnixNano()
	root := inode{Mode: ModeDir | 0o755, Nlink: 2, Atime: now, Mtime: now, Ctime: now}
	if err := fs.writeInode(rootIno, &root); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount opens an existing filesystem.
func Mount(dev blockdev.Device, cfg Config) (*FS, error) {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(0, b); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(b) != sbMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	sb := superblock{
		blockSize:  binary.LittleEndian.Uint32(b[4:]),
		nblocks:    binary.LittleEndian.Uint64(b[8:]),
		ninodes:    binary.LittleEndian.Uint64(b[16:]),
		itabStart:  binary.LittleEndian.Uint64(b[24:]),
		itabBlocks: binary.LittleEndian.Uint64(b[32:]),
		bmapStart:  binary.LittleEndian.Uint64(b[40:]),
		bmapBlocks: binary.LittleEndian.Uint64(b[48:]),
		dataStart:  binary.LittleEndian.Uint64(b[56:]),
		ngroups:    binary.LittleEndian.Uint64(b[64:]),
	}
	if sb.blockSize != uint32(dev.BlockSize()) {
		return nil, fmt.Errorf("%w: block size mismatch", ErrCorrupt)
	}
	return &FS{
		dev:    dev,
		pg:     pager.New(dev, 1024, true),
		sb:     sb,
		clock:  cfg.Clock,
		ilocks: make([]sync.RWMutex, sb.ninodes+1),
	}, nil
}

func (f *FS) writeSuperblock() error {
	b := make([]byte, f.dev.BlockSize())
	binary.LittleEndian.PutUint32(b, sbMagic)
	binary.LittleEndian.PutUint32(b[4:], f.sb.blockSize)
	binary.LittleEndian.PutUint64(b[8:], f.sb.nblocks)
	binary.LittleEndian.PutUint64(b[16:], f.sb.ninodes)
	binary.LittleEndian.PutUint64(b[24:], f.sb.itabStart)
	binary.LittleEndian.PutUint64(b[32:], f.sb.itabBlocks)
	binary.LittleEndian.PutUint64(b[40:], f.sb.bmapStart)
	binary.LittleEndian.PutUint64(b[48:], f.sb.bmapBlocks)
	binary.LittleEndian.PutUint64(b[56:], f.sb.dataStart)
	binary.LittleEndian.PutUint64(b[64:], f.sb.ngroups)
	return f.dev.WriteBlock(0, b)
}

// Stats returns a snapshot of the operation counters.
func (f *FS) Stats() Stats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.stats
}

// ResetStats zeroes the counters between experiment phases.
func (f *FS) ResetStats() {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	f.stats = Stats{}
}

func (f *FS) addStat(fn func(*Stats)) {
	f.statMu.Lock()
	fn(&f.stats)
	f.statMu.Unlock()
}

// Sync flushes cached metadata.
func (f *FS) Sync() error {
	if err := f.pg.Sync(); err != nil {
		return err
	}
	return f.dev.Sync()
}

// --- bitmap allocation with cylinder-group preference ---

func (f *FS) bitmapSet(blk uint64, used bool) error {
	byteIdx := blk / 8
	pno := f.sb.bmapStart + byteIdx/uint64(f.dev.BlockSize())
	off := byteIdx % uint64(f.dev.BlockSize())
	pg, err := f.pg.Acquire(pno)
	if err != nil {
		return err
	}
	defer f.pg.Release(pg)
	bit := byte(1) << (blk % 8)
	if used {
		pg.Data()[off] |= bit
	} else {
		pg.Data()[off] &^= bit
	}
	f.pg.MarkDirty(pg)
	return nil
}

func (f *FS) bitmapGet(blk uint64) (bool, error) {
	byteIdx := blk / 8
	pno := f.sb.bmapStart + byteIdx/uint64(f.dev.BlockSize())
	off := byteIdx % uint64(f.dev.BlockSize())
	pg, err := f.pg.Acquire(pno)
	if err != nil {
		return false, err
	}
	defer f.pg.Release(pg)
	return pg.Data()[off]&(byte(1)<<(blk%8)) != 0, nil
}

// groupOf maps a block to its cylinder group.
func (f *FS) groupOf(blk uint64) uint64 {
	span := (f.sb.nblocks - f.sb.dataStart) / f.sb.ngroups
	if span == 0 {
		return 0
	}
	g := (blk - f.sb.dataStart) / span
	if g >= f.sb.ngroups {
		g = f.sb.ngroups - 1
	}
	return g
}

// groupStart returns the first data block of group g.
func (f *FS) groupStart(g uint64) uint64 {
	span := (f.sb.nblocks - f.sb.dataStart) / f.sb.ngroups
	return f.sb.dataStart + g*span
}

// allocBlock finds a free data block, preferring the given cylinder
// group (FFS locality policy: a file's blocks go to its directory's
// group).
func (f *FS) allocBlock(prefGroup uint64) (uint64, error) {
	f.allocMu.Lock()
	defer f.allocMu.Unlock()
	prefGroup = prefGroup % f.sb.ngroups
	// Scan the preferred group first, then the rest, wrapping.
	for gi := uint64(0); gi < f.sb.ngroups; gi++ {
		g := (prefGroup + gi) % f.sb.ngroups
		start := f.groupStart(g)
		end := f.groupStart(g + 1)
		if g == f.sb.ngroups-1 {
			end = f.sb.nblocks
		}
		for blk := start; blk < end; blk++ {
			used, err := f.bitmapGet(blk)
			if err != nil {
				return 0, err
			}
			if !used {
				if err := f.bitmapSet(blk, true); err != nil {
					return 0, err
				}
				f.addStat(func(s *Stats) {
					s.BlockAllocs++
					if gi == 0 {
						s.GroupHits++
					}
				})
				return blk, nil
			}
		}
	}
	return 0, ErrNoSpace
}

func (f *FS) freeBlock(blk uint64) error {
	// Drop any cached copy first: the block may be reallocated as file
	// data, which bypasses the cache, and a stale dirty page must never
	// win over direct writes.
	if err := f.pg.Invalidate(blk); err != nil {
		return err
	}
	f.allocMu.Lock()
	defer f.allocMu.Unlock()
	return f.bitmapSet(blk, false)
}

// --- inode table ---

func (f *FS) inodePage(ino uint64) (pno uint64, off int, err error) {
	if ino == 0 || ino > f.sb.ninodes {
		return 0, 0, fmt.Errorf("%w: inode %d", ErrInvalid, ino)
	}
	perBlock := uint64(f.dev.BlockSize()) / inodeSize
	pno = f.sb.itabStart + (ino-1)/perBlock
	off = int((ino - 1) % perBlock * inodeSize)
	return pno, off, nil
}

func (f *FS) readInode(ino uint64) (*inode, error) {
	pno, off, err := f.inodePage(ino)
	if err != nil {
		return nil, err
	}
	pg, err := f.pg.Acquire(pno)
	if err != nil {
		return nil, err
	}
	defer f.pg.Release(pg)
	f.addStat(func(s *Stats) { s.InodeReads++ })
	b := pg.Data()[off:]
	in := &inode{
		Mode:  binary.LittleEndian.Uint32(b),
		Nlink: binary.LittleEndian.Uint32(b[4:]),
		Size:  binary.LittleEndian.Uint64(b[8:]),
		Atime: int64(binary.LittleEndian.Uint64(b[16:])),
		Mtime: int64(binary.LittleEndian.Uint64(b[24:])),
		Ctime: int64(binary.LittleEndian.Uint64(b[32:])),
	}
	for i := 0; i < ndirect; i++ {
		in.Direct[i] = binary.LittleEndian.Uint64(b[40+8*i:])
	}
	in.Indirect = binary.LittleEndian.Uint64(b[40+8*ndirect:])
	in.DIndirect = binary.LittleEndian.Uint64(b[48+8*ndirect:])
	in.Group = binary.LittleEndian.Uint32(b[56+8*ndirect:])
	return in, nil
}

func (f *FS) writeInode(ino uint64, in *inode) error {
	pno, off, err := f.inodePage(ino)
	if err != nil {
		return err
	}
	pg, err := f.pg.Acquire(pno)
	if err != nil {
		return err
	}
	defer f.pg.Release(pg)
	b := pg.Data()[off:]
	binary.LittleEndian.PutUint32(b, in.Mode)
	binary.LittleEndian.PutUint32(b[4:], in.Nlink)
	binary.LittleEndian.PutUint64(b[8:], in.Size)
	binary.LittleEndian.PutUint64(b[16:], uint64(in.Atime))
	binary.LittleEndian.PutUint64(b[24:], uint64(in.Mtime))
	binary.LittleEndian.PutUint64(b[32:], uint64(in.Ctime))
	for i := 0; i < ndirect; i++ {
		binary.LittleEndian.PutUint64(b[40+8*i:], in.Direct[i])
	}
	binary.LittleEndian.PutUint64(b[40+8*ndirect:], in.Indirect)
	binary.LittleEndian.PutUint64(b[48+8*ndirect:], in.DIndirect)
	binary.LittleEndian.PutUint32(b[56+8*ndirect:], in.Group)
	f.pg.MarkDirty(pg)
	return nil
}

// allocInode finds a free inode slot (Mode == 0), scanning from a hint.
func (f *FS) allocInode() (uint64, error) {
	f.allocMu.Lock()
	defer f.allocMu.Unlock()
	if f.inoHint < 2 {
		f.inoHint = 2
	}
	for tried := uint64(0); tried < f.sb.ninodes; tried++ {
		ino := f.inoHint + tried
		if ino > f.sb.ninodes {
			ino = 2 + (ino-2)%(f.sb.ninodes-1)
		}
		if ino == rootIno {
			continue
		}
		in, err := f.readInode(ino)
		if err != nil {
			return 0, err
		}
		if in.Mode == 0 {
			// Claim it with a placeholder so concurrent allocs skip it.
			in.Mode = ModeRegular
			if err := f.writeInode(ino, in); err != nil {
				return 0, err
			}
			f.inoHint = ino + 1
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}

// NumGroups exposes group count for layout experiments.
func (f *FS) NumGroups() uint64 { return f.sb.ngroups }

// DataStart exposes the first data block for layout experiments.
func (f *FS) DataStart() uint64 { return f.sb.dataStart }
