package hierfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
)

// DirEntry is one directory entry.
type DirEntry struct {
	Name string
	Ino  uint64
}

// FileInfo is the stat result.
type FileInfo struct {
	Ino   uint64
	Mode  uint32
	Size  uint64
	Nlink uint32
	Atime int64
	Mtime int64
	Ctime int64
}

// IsDir reports whether the info describes a directory.
func (fi FileInfo) IsDir() bool { return fi.Mode&ModeDir != 0 }

func cleanPath(p string) (string, error) {
	if p == "" {
		return "", fmt.Errorf("empty path: %w", ErrInvalid)
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p), nil
}

// components splits a cleaned path into its parts ("/a/b" → [a b]).
func components(p string) []string {
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// readDirEntries decodes a directory's entry list. Caller holds at least
// a read lock on the directory inode.
func (f *FS) readDirEntries(ino uint64, in *inode) ([]DirEntry, error) {
	data := make([]byte, in.Size)
	if in.Size > 0 {
		if _, err := f.readInodeData(ino, in, data, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
	}
	var out []DirEntry
	for off := 0; off < len(data); {
		if off+10 > len(data) {
			return nil, fmt.Errorf("%w: truncated dirent", ErrCorrupt)
		}
		entIno := binary.LittleEndian.Uint64(data[off:])
		nameLen := int(binary.LittleEndian.Uint16(data[off+8:]))
		off += 10
		if off+nameLen > len(data) {
			return nil, fmt.Errorf("%w: dirent name overruns", ErrCorrupt)
		}
		out = append(out, DirEntry{Name: string(data[off : off+nameLen]), Ino: entIno})
		off += nameLen
	}
	return out, nil
}

// writeDirEntries replaces a directory's entry list. Caller holds the
// directory's write lock.
func (f *FS) writeDirEntries(ino uint64, in *inode, entries []DirEntry) error {
	var buf []byte
	var tmp [10]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(tmp[:], e.Ino)
		binary.LittleEndian.PutUint16(tmp[8:], uint16(len(e.Name)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, e.Name...)
	}
	if uint64(len(buf)) < in.Size {
		if err := f.truncateInode(ino, in, uint64(len(buf))); err != nil {
			return err
		}
	}
	if len(buf) == 0 {
		return f.writeInode(ino, in)
	}
	return f.writeInodeData(ino, in, buf, 0)
}

// dirScan finds name in the directory, counting the linear-scan work.
func (f *FS) dirScan(ino uint64, in *inode, name string) (uint64, bool, error) {
	entries, err := f.readDirEntries(ino, in)
	if err != nil {
		return 0, false, err
	}
	for i, e := range entries {
		if e.Name == name {
			f.addStat(func(s *Stats) { s.DirEntriesScanned += int64(i + 1) })
			return e.Ino, true, nil
		}
	}
	f.addStat(func(s *Stats) { s.DirEntriesScanned += int64(len(entries)) })
	return 0, false, nil
}

// Lookup resolves a path to an inode number, read-locking every ancestor
// directory along the way — the shared-ancestor synchronization of §2.3.
func (f *FS) Lookup(p string) (uint64, error) {
	c, err := cleanPath(p)
	if err != nil {
		return 0, err
	}
	cur := uint64(rootIno)
	for _, part := range components(c) {
		f.rlockIno(cur)
		in, err := f.readInode(cur)
		if err != nil {
			f.ilocks[cur].RUnlock()
			return 0, err
		}
		if in.Mode&ModeDir == 0 {
			f.ilocks[cur].RUnlock()
			return 0, fmt.Errorf("%s: %w", p, ErrNotDir)
		}
		f.addStat(func(s *Stats) { s.DirLookups++ })
		next, found, err := f.dirScan(cur, in, part)
		f.ilocks[cur].RUnlock()
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, fmt.Errorf("%s: %w", p, ErrNotExist)
		}
		cur = next
	}
	return cur, nil
}

// Stat returns metadata for a path.
func (f *FS) Stat(p string) (FileInfo, error) {
	ino, err := f.Lookup(p)
	if err != nil {
		return FileInfo{}, err
	}
	return f.StatIno(ino)
}

// StatIno returns metadata for an inode.
func (f *FS) StatIno(ino uint64) (FileInfo, error) {
	f.rlockIno(ino)
	defer f.ilocks[ino].RUnlock()
	in, err := f.readInode(ino)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Ino: ino, Mode: in.Mode, Size: in.Size, Nlink: in.Nlink,
		Atime: in.Atime, Mtime: in.Mtime, Ctime: in.Ctime,
	}, nil
}

// createNode allocates an inode and links it under the parent.
func (f *FS) createNode(p string, mode uint32) (uint64, error) {
	c, err := cleanPath(p)
	if err != nil {
		return 0, err
	}
	if c == "/" {
		return 0, fmt.Errorf("/: %w", ErrExist)
	}
	dir, name := path.Split(c)
	dirIno, err := f.Lookup(dir)
	if err != nil {
		return 0, err
	}
	f.lockIno(dirIno)
	defer f.ilocks[dirIno].Unlock()
	din, err := f.readInode(dirIno)
	if err != nil {
		return 0, err
	}
	if din.Mode&ModeDir == 0 {
		return 0, fmt.Errorf("%s: %w", dir, ErrNotDir)
	}
	if _, found, err := f.dirScan(dirIno, din, name); err != nil {
		return 0, err
	} else if found {
		return 0, fmt.Errorf("%s: %w", c, ErrExist)
	}
	ino, err := f.allocInode()
	if err != nil {
		return 0, err
	}
	now := f.clock().UnixNano()
	nlink := uint32(1)
	group := uint32(din.Group) // files cluster with their directory
	if mode&ModeDir != 0 {
		nlink = 2
		group = uint32(ino % f.sb.ngroups) // directories spread out
	}
	in := &inode{Mode: mode, Nlink: nlink, Atime: now, Mtime: now, Ctime: now, Group: group}
	if err := f.writeInode(ino, in); err != nil {
		return 0, err
	}
	entries, err := f.readDirEntries(dirIno, din)
	if err != nil {
		return 0, err
	}
	entries = append(entries, DirEntry{Name: name, Ino: ino})
	if err := f.writeDirEntries(dirIno, din, entries); err != nil {
		return 0, err
	}
	return ino, nil
}

// Create makes a regular file (truncating an existing one).
func (f *FS) Create(p string, perm uint32) (uint64, error) {
	ino, err := f.createNode(p, ModeRegular|(perm&ModePerm))
	if err == nil {
		return ino, nil
	}
	if !errorsIs(err, ErrExist) {
		return 0, err
	}
	// Exists: truncate.
	ino, lerr := f.Lookup(p)
	if lerr != nil {
		return 0, lerr
	}
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, lerr := f.readInode(ino)
	if lerr != nil {
		return 0, lerr
	}
	if in.Mode&ModeDir != 0 {
		return 0, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	if lerr := f.truncateInode(ino, in, 0); lerr != nil {
		return 0, lerr
	}
	return ino, nil
}

// Mkdir creates a directory.
func (f *FS) Mkdir(p string, perm uint32) error {
	_, err := f.createNode(p, ModeDir|(perm&ModePerm))
	return err
}

// MkdirAll creates p and missing parents.
func (f *FS) MkdirAll(p string, perm uint32) error {
	c, err := cleanPath(p)
	if err != nil {
		return err
	}
	cur := ""
	for _, part := range components(c) {
		cur += "/" + part
		err := f.Mkdir(cur, perm)
		if err != nil && !errorsIs(err, ErrExist) {
			return err
		}
	}
	info, err := f.Stat(c)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return fmt.Errorf("%s: %w", c, ErrNotDir)
	}
	return nil
}

// ReadDir lists a directory in name order.
func (f *FS) ReadDir(p string) ([]DirEntry, error) {
	ino, err := f.Lookup(p)
	if err != nil {
		return nil, err
	}
	f.rlockIno(ino)
	defer f.ilocks[ino].RUnlock()
	in, err := f.readInode(ino)
	if err != nil {
		return nil, err
	}
	if in.Mode&ModeDir == 0 {
		return nil, fmt.Errorf("%s: %w", p, ErrNotDir)
	}
	entries, err := f.readDirEntries(ino, in)
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// Remove unlinks a file or empty directory.
func (f *FS) Remove(p string) error {
	c, err := cleanPath(p)
	if err != nil {
		return err
	}
	if c == "/" {
		return fmt.Errorf("/: %w", ErrInvalid)
	}
	dir, name := path.Split(c)
	dirIno, err := f.Lookup(dir)
	if err != nil {
		return err
	}
	f.lockIno(dirIno)
	defer f.ilocks[dirIno].Unlock()
	din, err := f.readInode(dirIno)
	if err != nil {
		return err
	}
	ino, found, err := f.dirScan(dirIno, din, name)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%s: %w", c, ErrNotExist)
	}
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode&ModeDir != 0 {
		kids, err := f.readDirEntries(ino, in)
		if err != nil {
			return err
		}
		if len(kids) > 0 {
			return fmt.Errorf("%s: %w", c, ErrNotEmpty)
		}
	}
	entries, err := f.readDirEntries(dirIno, din)
	if err != nil {
		return err
	}
	kept := entries[:0]
	for _, e := range entries {
		if e.Name != name {
			kept = append(kept, e)
		}
	}
	if err := f.writeDirEntries(dirIno, din, kept); err != nil {
		return err
	}
	if in.Nlink > 1 && in.Mode&ModeDir == 0 {
		in.Nlink--
		return f.writeInode(ino, in)
	}
	return f.freeInodeData(ino, in)
}

// Link adds a hard link to an existing file.
func (f *FS) Link(oldPath, newPath string) error {
	ino, err := f.Lookup(oldPath)
	if err != nil {
		return err
	}
	f.lockIno(ino)
	in, err := f.readInode(ino)
	if err != nil {
		f.ilocks[ino].Unlock()
		return err
	}
	if in.Mode&ModeDir != 0 {
		f.ilocks[ino].Unlock()
		return fmt.Errorf("%s: %w", oldPath, ErrIsDir)
	}
	in.Nlink++
	if err := f.writeInode(ino, in); err != nil {
		f.ilocks[ino].Unlock()
		return err
	}
	f.ilocks[ino].Unlock()

	nc, err := cleanPath(newPath)
	if err != nil {
		return err
	}
	dir, name := path.Split(nc)
	dirIno, err := f.Lookup(dir)
	if err != nil {
		return err
	}
	f.lockIno(dirIno)
	defer f.ilocks[dirIno].Unlock()
	din, err := f.readInode(dirIno)
	if err != nil {
		return err
	}
	if _, found, err := f.dirScan(dirIno, din, name); err != nil {
		return err
	} else if found {
		return fmt.Errorf("%s: %w", nc, ErrExist)
	}
	entries, err := f.readDirEntries(dirIno, din)
	if err != nil {
		return err
	}
	entries = append(entries, DirEntry{Name: name, Ino: ino})
	return f.writeDirEntries(dirIno, din, entries)
}

// Rename moves an entry between directories. Unlike the hFAD POSIX
// layer's full-path index, only the two directory entry lists change —
// this is where hierarchies are cheap, and the experiments report it.
func (f *FS) Rename(oldPath, newPath string) error {
	oc, err := cleanPath(oldPath)
	if err != nil {
		return err
	}
	nc, err := cleanPath(newPath)
	if err != nil {
		return err
	}
	if oc == "/" || nc == "/" || strings.HasPrefix(nc, oc+"/") {
		return fmt.Errorf("rename %s -> %s: %w", oc, nc, ErrInvalid)
	}
	odir, oname := path.Split(oc)
	ndir, nname := path.Split(nc)
	odIno, err := f.Lookup(odir)
	if err != nil {
		return err
	}
	ndIno, err := f.Lookup(ndir)
	if err != nil {
		return err
	}
	// Lock parents in ino order to avoid deadlock.
	first, second := odIno, ndIno
	if first > second {
		first, second = second, first
	}
	f.lockIno(first)
	if second != first {
		f.lockIno(second)
	}
	defer func() {
		if second != first {
			f.ilocks[second].Unlock()
		}
		f.ilocks[first].Unlock()
	}()

	odin, err := f.readInode(odIno)
	if err != nil {
		return err
	}
	ino, found, err := f.dirScan(odIno, odin, oname)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%s: %w", oc, ErrNotExist)
	}
	ndin := odin
	if ndIno != odIno {
		ndin, err = f.readInode(ndIno)
		if err != nil {
			return err
		}
	}
	if _, exists, err := f.dirScan(ndIno, ndin, nname); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%s: %w", nc, ErrExist)
	}
	// Remove from the old directory.
	oldEntries, err := f.readDirEntries(odIno, odin)
	if err != nil {
		return err
	}
	kept := oldEntries[:0]
	for _, e := range oldEntries {
		if e.Name != oname {
			kept = append(kept, e)
		}
	}
	if err := f.writeDirEntries(odIno, odin, kept); err != nil {
		return err
	}
	// Add to the new directory (re-read if same dir: entries changed).
	if ndIno == odIno {
		ndin, err = f.readInode(ndIno)
		if err != nil {
			return err
		}
	}
	newEntries, err := f.readDirEntries(ndIno, ndin)
	if err != nil {
		return err
	}
	newEntries = append(newEntries, DirEntry{Name: nname, Ino: ino})
	return f.writeDirEntries(ndIno, ndin, newEntries)
}

// WriteFile creates p with contents.
func (f *FS) WriteFile(p string, data []byte, perm uint32) error {
	ino, err := f.Create(p, perm)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	return f.WriteAtIno(ino, data, 0)
}

// ReadFile returns the contents of p.
func (f *FS) ReadFile(p string) ([]byte, error) {
	info, err := f.Stat(p)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	out := make([]byte, info.Size)
	if info.Size == 0 {
		return out, nil
	}
	if _, err := f.ReadAtIno(info.Ino, out, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return out, nil
}

// Walk visits every path under root in depth-first name order.
func (f *FS) Walk(root string, fn func(p string, info FileInfo) error) error {
	c, err := cleanPath(root)
	if err != nil {
		return err
	}
	info, err := f.Stat(c)
	if err != nil {
		return err
	}
	if err := fn(c, info); err != nil {
		return err
	}
	if !info.IsDir() {
		return nil
	}
	entries, err := f.ReadDir(c)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := c + "/" + e.Name
		if c == "/" {
			child = "/" + e.Name
		}
		if err := f.Walk(child, fn); err != nil {
			return err
		}
	}
	return nil
}

// errorsIs narrows the import surface for wrapped sentinel checks.
func errorsIs(err, target error) bool { return errors.Is(err, target) }
