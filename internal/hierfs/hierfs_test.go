package hierfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/blockdev"
)

func newFS(t *testing.T, blocks uint64) (*FS, *blockdev.MemDevice) {
	t.Helper()
	dev := blockdev.NewMem(blocks, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{})
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	return fs, dev
}

func TestMkfsAndRootStat(t *testing.T) {
	fs, _ := newFS(t, 4096)
	info, err := fs.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir() || info.Ino != rootIno {
		t.Errorf("root = %+v", info)
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.WriteFile("/f.txt", []byte("ffs lives"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ffs lives" {
		t.Errorf("ReadFile = %q", got)
	}
}

func TestMkdirHierarchy(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.MkdirAll("/home/margo/photos", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/home/margo/photos/p1.jpg", []byte("jpeg"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/home/margo/photos")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "p1.jpg" {
		t.Errorf("entries = %+v", entries)
	}
	if _, err := fs.Lookup("/home/nick"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing lookup = %v", err)
	}
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	fs, _ := newFS(t, 16384) // 64 MiB
	// 12 direct blocks = 48 KiB; write 5 MiB to force double-indirect use.
	big := bytes.Repeat([]byte("ABCDEFGH"), 5*1024*1024/8)
	if err := fs.WriteFile("/big", big, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large file corrupted")
	}
	if fs.Stats().IndirectHops == 0 {
		t.Error("no indirect traversals recorded for a 5 MiB file")
	}
	// Sparse read inside.
	buf := make([]byte, 100)
	if _, err := fs.ReadAt("/big", buf, 3*1024*1024); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, big[3*1024*1024:3*1024*1024+100]) {
		t.Error("mid-file read mismatch")
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs, _ := newFS(t, 8192)
	data := bytes.Repeat([]byte("x"), 500000)
	if err := fs.WriteFile("/t", data, 0o644); err != nil {
		t.Fatal(err)
	}
	allocs := fs.Stats().BlockAllocs
	if err := fs.Truncate("/t", 1000); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/t")
	if info.Size != 1000 {
		t.Errorf("Size = %d", info.Size)
	}
	// Rewrite: freed blocks must be reusable without growing allocations
	// unboundedly.
	if err := fs.WriteFile("/t2", data, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = allocs
	got, _ := fs.ReadFile("/t")
	if len(got) != 1000 {
		t.Errorf("truncated read = %d bytes", len(got))
	}
}

func TestRemoveAndReuse(t *testing.T) {
	fs, _ := newFS(t, 4096)
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.WriteFile(p, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := fs.ReadDir("/")
	if len(entries) != 0 {
		t.Errorf("root not empty: %+v", entries)
	}
	// Inodes must be reusable.
	for i := 0; i < 50; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/g%d", i), []byte("x"), 0o644); err != nil {
			t.Fatalf("reuse create %d: %v", i, err)
		}
	}
}

func TestRemoveSemantics(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty = %v", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing = %v", err)
	}
}

func TestHardLink(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.WriteFile("/a", []byte("linked"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	ia, _ := fs.Stat("/a")
	ib, _ := fs.Stat("/b")
	if ia.Ino != ib.Ino {
		t.Error("link has different inode")
	}
	if ia.Nlink != 2 {
		t.Errorf("nlink = %d", ia.Nlink)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/b")
	if err != nil || string(got) != "linked" {
		t.Errorf("after unlink = %q, %v", got, err)
	}
}

func TestRename(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.MkdirAll("/src", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/dst", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/src/f", []byte("moving"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/src/f"); !errors.Is(err, ErrNotExist) {
		t.Error("old name survives")
	}
	got, _ := fs.ReadFile("/dst/g")
	if string(got) != "moving" {
		t.Errorf("moved = %q", got)
	}
	// Renaming a directory moves the whole subtree with one entry edit.
	if err := fs.WriteFile("/dst/h", []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/dst", "/renamed"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/renamed/g")
	if err != nil || string(got) != "moving" {
		t.Errorf("after dir rename = %q, %v", got, err)
	}
}

func TestInsertAtShiftsTail(t *testing.T) {
	fs, _ := newFS(t, 8192)
	if err := fs.WriteFile("/doc", []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.InsertAt("/doc", 5, []byte(" brave")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/doc")
	if string(got) != "hello brave world" {
		t.Errorf("after insert = %q", got)
	}
	if fs.Stats().ShiftBytes != 6 { // " world"
		t.Errorf("ShiftBytes = %d, want 6", fs.Stats().ShiftBytes)
	}
	// The tail shift grows linearly with file size — the O(n) baseline.
	big := bytes.Repeat([]byte("z"), 200000)
	if err := fs.WriteFile("/big", big, 0o644); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats().ShiftBytes
	if err := fs.InsertAt("/big", 10, []byte("INS")); err != nil {
		t.Fatal(err)
	}
	shifted := fs.Stats().ShiftBytes - before
	if shifted != 200000-10 {
		t.Errorf("shifted %d bytes, want %d", shifted, 200000-10)
	}
	if err := fs.InsertAt("/big", uint64(len(big)+100), []byte("x")); !errors.Is(err, ErrInvalid) {
		t.Errorf("insert beyond EOF = %v", err)
	}
}

func TestDeleteRangeAtShiftsTail(t *testing.T) {
	fs, _ := newFS(t, 8192)
	if err := fs.WriteFile("/doc", []byte("hello cruel world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.DeleteRangeAt("/doc", 5, 6); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/doc")
	if string(got) != "hello world" {
		t.Errorf("after delete-range = %q", got)
	}
}

func TestPathResolutionCountsLockAcquires(t *testing.T) {
	fs, _ := newFS(t, 8192)
	if err := fs.MkdirAll("/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/d/leaf", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	if _, err := fs.Lookup("/a/b/c/d/leaf"); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.DirLookups != 5 {
		t.Errorf("DirLookups = %d, want 5", s.DirLookups)
	}
	if s.LockAcquires != 5 {
		t.Errorf("LockAcquires = %d, want 5 (every ancestor locked)", s.LockAcquires)
	}
}

func TestGroupPreferredAllocation(t *testing.T) {
	fs, _ := newFS(t, 16384)
	if err := fs.WriteFile("/clustered", bytes.Repeat([]byte("y"), 100000), 0o644); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.BlockAllocs == 0 {
		t.Fatal("no allocations")
	}
	if s.GroupHits < s.BlockAllocs*3/4 {
		t.Errorf("only %d/%d allocations hit the preferred group", s.GroupHits, s.BlockAllocs)
	}
}

func TestMountReopens(t *testing.T) {
	dev := blockdev.NewMem(8192, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/persist/here", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/persist/here/f", []byte("durable ffs"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, Config{})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	got, err := fs2.ReadFile("/persist/here/f")
	if err != nil || string(got) != "durable ffs" {
		t.Errorf("remounted = %q, %v", got, err)
	}
	// Mounting garbage fails.
	if _, err := Mount(blockdev.NewMem(64, blockdev.DefaultBlockSize), Config{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mount garbage = %v", err)
	}
}

func TestWalk(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.MkdirAll("/w/x", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w/x/1", []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w/2", []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	var paths []string
	if err := fs.Walk("/", func(p string, info FileInfo) error {
		paths = append(paths, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/w", "/w/2", "/w/x", "/w/x/1"}
	if len(paths) != len(want) {
		t.Fatalf("Walk = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestConcurrentFileOps(t *testing.T) {
	fs, _ := newFS(t, 16384)
	if err := fs.MkdirAll("/con", 0o755); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := fmt.Sprintf("/con/w%d-f%d", w, i)
				if err := fs.WriteFile(p, []byte(p), 0o644); err != nil {
					t.Errorf("WriteFile: %v", err)
					return
				}
				got, err := fs.ReadFile(p)
				if err != nil || string(got) != p {
					t.Errorf("ReadFile(%s) = %q, %v", p, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	entries, _ := fs.ReadDir("/con")
	if len(entries) != 120 {
		t.Errorf("entries = %d, want 120", len(entries))
	}
}

func TestOutOfSpace(t *testing.T) {
	fs, _ := newFS(t, 128) // tiny: ~homeopathic data region
	big := bytes.Repeat([]byte("x"), 1<<20)
	err := fs.WriteFile("/huge", big, 0o644)
	if !errors.Is(err, ErrNoSpace) {
		t.Errorf("overfill = %v, want ErrNoSpace", err)
	}
}

func TestReadDirNotDir(t *testing.T) {
	fs, _ := newFS(t, 4096)
	if err := fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadDir("/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir(file) = %v", err)
	}
	if _, err := fs.Lookup("/f/child"); !errors.Is(err, ErrNotDir) {
		t.Errorf("lookup through file = %v", err)
	}
}
