package hierfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ptrsPerBlock is the number of block pointers an indirect block holds.
func (f *FS) ptrsPerBlock() uint64 { return uint64(f.dev.BlockSize()) / 8 }

// maxFileBlocks is the largest file in blocks (direct + single + double).
func (f *FS) maxFileBlocks() uint64 {
	p := f.ptrsPerBlock()
	return ndirect + p + p*p
}

// bmap maps file block fb of inode in to a physical block. With allocate
// set, missing blocks (and indirect blocks) are allocated; otherwise 0 is
// returned for holes. The caller holds the inode's lock and is
// responsible for writing the inode back if it changed (returned flag).
func (f *FS) bmap(ino uint64, in *inode, fb uint64, allocate bool) (phys uint64, inodeDirty bool, err error) {
	group := uint64(in.Group)
	p := f.ptrsPerBlock()
	switch {
	case fb < ndirect:
		if in.Direct[fb] == 0 && allocate {
			blk, err := f.allocBlock(group)
			if err != nil {
				return 0, false, err
			}
			if err := f.zeroBlock(blk); err != nil {
				return 0, false, err
			}
			in.Direct[fb] = blk
			return blk, true, nil
		}
		return in.Direct[fb], false, nil

	case fb < ndirect+p:
		idx := fb - ndirect
		if in.Indirect == 0 {
			if !allocate {
				return 0, false, nil
			}
			blk, err := f.allocBlock(group)
			if err != nil {
				return 0, false, err
			}
			if err := f.zeroBlock(blk); err != nil {
				return 0, false, err
			}
			in.Indirect = blk
			inodeDirty = true
		}
		f.addStat(func(s *Stats) { s.IndirectHops++ })
		phys, err := f.ptrAt(in.Indirect, idx, group, allocate)
		return phys, inodeDirty, err

	case fb < f.maxFileBlocks():
		idx := fb - ndirect - p
		if in.DIndirect == 0 {
			if !allocate {
				return 0, false, nil
			}
			blk, err := f.allocBlock(group)
			if err != nil {
				return 0, false, err
			}
			if err := f.zeroBlock(blk); err != nil {
				return 0, false, err
			}
			in.DIndirect = blk
			inodeDirty = true
		}
		f.addStat(func(s *Stats) { s.IndirectHops++ })
		l1, err := f.ptrAt(in.DIndirect, idx/p, group, allocate)
		if err != nil {
			return 0, inodeDirty, err
		}
		if l1 == 0 {
			return 0, inodeDirty, nil
		}
		f.addStat(func(s *Stats) { s.IndirectHops++ })
		phys, err := f.ptrAt(l1, idx%p, group, allocate)
		return phys, inodeDirty, err

	default:
		return 0, false, ErrFileTooBig
	}
}

// ptrAt reads (and with allocate, fills) slot idx of an indirect block.
func (f *FS) ptrAt(blk, idx, group uint64, allocate bool) (uint64, error) {
	pg, err := f.pg.Acquire(blk)
	if err != nil {
		return 0, err
	}
	defer f.pg.Release(pg)
	v := binary.LittleEndian.Uint64(pg.Data()[idx*8:])
	if v == 0 && allocate {
		nb, err := f.allocBlock(group)
		if err != nil {
			return 0, err
		}
		if err := f.zeroBlock(nb); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(pg.Data()[idx*8:], nb)
		f.pg.MarkDirty(pg)
		return nb, nil
	}
	return v, nil
}

func (f *FS) zeroBlock(blk uint64) error {
	return f.dev.WriteBlock(blk, make([]byte, f.dev.BlockSize()))
}

// readInodeData reads len(p) bytes at off from the inode's data,
// zero-filling holes; short reads at EOF return io.EOF. Caller holds at
// least a read lock on the inode. Directory data goes through the buffer
// cache (as the real FFS buffer cache does); regular-file data reads the
// device directly.
func (f *FS) readInodeData(ino uint64, in *inode, p []byte, off uint64) (int, error) {
	if off >= in.Size {
		return 0, io.EOF
	}
	n := len(p)
	eof := false
	if off+uint64(n) >= in.Size {
		n = int(in.Size - off)
		eof = true
	}
	cached := in.Mode&ModeDir != 0
	bs := uint64(f.dev.BlockSize())
	buf := make([]byte, bs)
	done := 0
	for done < n {
		fb := (off + uint64(done)) / bs
		bo := (off + uint64(done)) % bs
		phys, _, err := f.bmap(ino, in, fb, false)
		if err != nil {
			return done, err
		}
		m := int(bs - bo)
		if m > n-done {
			m = n - done
		}
		switch {
		case phys == 0:
			for i := 0; i < m; i++ {
				p[done+i] = 0
			}
		case cached:
			pg, err := f.pg.Acquire(phys)
			if err != nil {
				return done, err
			}
			copy(p[done:done+m], pg.Data()[bo:])
			f.pg.Release(pg)
		default:
			if err := f.dev.ReadBlock(phys, buf); err != nil {
				return done, err
			}
			copy(p[done:done+m], buf[bo:])
		}
		done += m
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// writeInodeData writes p at off, allocating blocks and growing Size as
// needed. Caller holds the inode's write lock; the inode is written back.
// Directory data is written through the buffer cache; file data goes to
// the device directly.
func (f *FS) writeInodeData(ino uint64, in *inode, p []byte, off uint64) error {
	cached := in.Mode&ModeDir != 0
	bs := uint64(f.dev.BlockSize())
	buf := make([]byte, bs)
	done := 0
	for done < len(p) {
		fb := (off + uint64(done)) / bs
		bo := (off + uint64(done)) % bs
		phys, _, err := f.bmap(ino, in, fb, true)
		if err != nil {
			return err
		}
		m := int(bs - bo)
		if m > len(p)-done {
			m = len(p) - done
		}
		switch {
		case cached:
			pg, err := f.pg.Acquire(phys)
			if err != nil {
				return err
			}
			copy(pg.Data()[bo:], p[done:done+m])
			f.pg.MarkDirty(pg)
			f.pg.Release(pg)
		case bo == 0 && m == int(bs):
			if err := f.dev.WriteBlock(phys, p[done:done+int(bs)]); err != nil {
				return err
			}
		default:
			if err := f.dev.ReadBlock(phys, buf); err != nil {
				return err
			}
			copy(buf[bo:], p[done:done+m])
			if err := f.dev.WriteBlock(phys, buf); err != nil {
				return err
			}
		}
		done += m
	}
	end := off + uint64(len(p))
	if end > in.Size {
		in.Size = end
	}
	in.Mtime = f.clock().UnixNano()
	return f.writeInode(ino, in)
}

// truncateInode shrinks (or grows, with a hole) the inode to size.
// End-only, as POSIX truncate: the comparison point for hFAD's
// truncate-anywhere. Caller holds the write lock.
func (f *FS) truncateInode(ino uint64, in *inode, size uint64) error {
	bs := uint64(f.dev.BlockSize())
	if size >= in.Size {
		in.Size = size
		in.Mtime = f.clock().UnixNano()
		return f.writeInode(ino, in)
	}
	// Free whole blocks past the new end.
	keep := (size + bs - 1) / bs
	old := (in.Size + bs - 1) / bs
	p := f.ptrsPerBlock()
	for fb := keep; fb < old; fb++ {
		phys, _, err := f.bmap(ino, in, fb, false)
		if err != nil {
			return err
		}
		if phys != 0 {
			if err := f.freeBlock(phys); err != nil {
				return err
			}
			if err := f.clearPtr(in, fb); err != nil {
				return err
			}
		}
	}
	// Free indirect blocks that became empty.
	if keep <= ndirect && in.Indirect != 0 {
		if err := f.freeBlock(in.Indirect); err != nil {
			return err
		}
		in.Indirect = 0
	}
	if keep <= ndirect+p && in.DIndirect != 0 {
		// Free any level-1 blocks then the double-indirect root.
		pg, err := f.pg.Acquire(in.DIndirect)
		if err != nil {
			return err
		}
		var l1s []uint64
		for i := uint64(0); i < p; i++ {
			if v := binary.LittleEndian.Uint64(pg.Data()[i*8:]); v != 0 {
				l1s = append(l1s, v)
			}
		}
		f.pg.Release(pg)
		for _, l1 := range l1s {
			if err := f.freeBlock(l1); err != nil {
				return err
			}
		}
		if err := f.freeBlock(in.DIndirect); err != nil {
			return err
		}
		in.DIndirect = 0
	}
	in.Size = size
	in.Mtime = f.clock().UnixNano()
	return f.writeInode(ino, in)
}

// clearPtr zeroes the pointer slot for file block fb.
func (f *FS) clearPtr(in *inode, fb uint64) error {
	pp := f.ptrsPerBlock()
	switch {
	case fb < ndirect:
		in.Direct[fb] = 0
		return nil
	case fb < ndirect+pp:
		if in.Indirect == 0 {
			return nil
		}
		return f.zeroPtrAt(in.Indirect, fb-ndirect)
	default:
		if in.DIndirect == 0 {
			return nil
		}
		idx := fb - ndirect - pp
		l1, err := f.ptrAt(in.DIndirect, idx/pp, 0, false)
		if err != nil || l1 == 0 {
			return err
		}
		return f.zeroPtrAt(l1, idx%pp)
	}
}

func (f *FS) zeroPtrAt(blk, idx uint64) error {
	pg, err := f.pg.Acquire(blk)
	if err != nil {
		return err
	}
	defer f.pg.Release(pg)
	binary.LittleEndian.PutUint64(pg.Data()[idx*8:], 0)
	f.pg.MarkDirty(pg)
	return nil
}

// freeInodeData releases all blocks of an inode (for unlink).
func (f *FS) freeInodeData(ino uint64, in *inode) error {
	if err := f.truncateInode(ino, in, 0); err != nil {
		return err
	}
	in.Mode = 0
	in.Nlink = 0
	f.allocMu.Lock()
	if ino < f.inoHint {
		f.inoHint = ino
	}
	f.allocMu.Unlock()
	return f.writeInode(ino, in)
}

// --- public file data API (path-based) ---

// ReadAt reads from the file at path.
func (f *FS) ReadAt(path string, p []byte, off uint64) (int, error) {
	ino, err := f.Lookup(path)
	if err != nil {
		return 0, err
	}
	return f.ReadAtIno(ino, p, off)
}

// ReadAtIno reads from an already-resolved inode.
func (f *FS) ReadAtIno(ino uint64, p []byte, off uint64) (int, error) {
	f.rlockIno(ino)
	defer f.ilocks[ino].RUnlock()
	in, err := f.readInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Mode&ModeDir != 0 {
		return 0, fmt.Errorf("inode %d: %w", ino, ErrIsDir)
	}
	return f.readInodeData(ino, in, p, off)
}

// WriteAt writes to the file at path, extending it as needed.
func (f *FS) WriteAt(path string, p []byte, off uint64) error {
	ino, err := f.Lookup(path)
	if err != nil {
		return err
	}
	return f.WriteAtIno(ino, p, off)
}

// WriteAtIno writes to an already-resolved inode.
func (f *FS) WriteAtIno(ino uint64, p []byte, off uint64) error {
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode&ModeDir != 0 {
		return fmt.Errorf("inode %d: %w", ino, ErrIsDir)
	}
	return f.writeInodeData(ino, in, p, off)
}

// Truncate sets the file's size (end-only POSIX semantics).
func (f *FS) Truncate(path string, size uint64) error {
	ino, err := f.Lookup(path)
	if err != nil {
		return err
	}
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode&ModeDir != 0 {
		return fmt.Errorf("%s: %w", path, ErrIsDir)
	}
	return f.truncateInode(ino, in, size)
}

// InsertAt inserts p into the middle of the file by reading everything
// after off, rewriting it shifted, and growing the file: the O(n) cost a
// hierarchical file system pays for the operation hFAD's extent trees get
// in O(log n). ShiftBytes accounts the movement for the experiments.
func (f *FS) InsertAt(path string, off uint64, p []byte) error {
	ino, err := f.Lookup(path)
	if err != nil {
		return err
	}
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode&ModeDir != 0 {
		return fmt.Errorf("%s: %w", path, ErrIsDir)
	}
	if off > in.Size {
		return fmt.Errorf("%s: insert beyond EOF: %w", path, ErrInvalid)
	}
	tailLen := in.Size - off
	tail := make([]byte, tailLen)
	if tailLen > 0 {
		if _, err := f.readInodeData(ino, in, tail, off); err != nil && !errors.Is(err, io.EOF) {
			return err
		}
	}
	if err := f.writeInodeData(ino, in, p, off); err != nil {
		return err
	}
	if tailLen > 0 {
		if err := f.writeInodeData(ino, in, tail, off+uint64(len(p))); err != nil {
			return err
		}
	}
	f.addStat(func(s *Stats) { s.ShiftBytes += int64(tailLen) })
	return nil
}

// DeleteRangeAt removes n bytes at off by shifting the tail down and
// truncating — again O(n), the baseline for hFAD's truncate(offset, len).
func (f *FS) DeleteRangeAt(path string, off, n uint64) error {
	ino, err := f.Lookup(path)
	if err != nil {
		return err
	}
	f.lockIno(ino)
	defer f.ilocks[ino].Unlock()
	in, err := f.readInode(ino)
	if err != nil {
		return err
	}
	if off >= in.Size || n == 0 {
		return nil
	}
	if off+n > in.Size {
		n = in.Size - off
	}
	tailLen := in.Size - off - n
	if tailLen > 0 {
		tail := make([]byte, tailLen)
		if _, err := f.readInodeData(ino, in, tail, off+n); err != nil && !errors.Is(err, io.EOF) {
			return err
		}
		if err := f.writeInodeData(ino, in, tail, off); err != nil {
			return err
		}
		f.addStat(func(s *Stats) { s.ShiftBytes += int64(tailLen) })
	}
	return f.truncateInode(ino, in, in.Size-n)
}

func (f *FS) rlockIno(ino uint64) {
	f.addStat(func(s *Stats) { s.LockAcquires++ })
	f.ilocks[ino].RLock()
}

func (f *FS) lockIno(ino uint64) {
	f.addStat(func(s *Stats) { s.LockAcquires++ })
	f.ilocks[ino].Lock()
}
