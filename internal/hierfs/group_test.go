package hierfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/blockdev"
)

// TestFilesInheritDirectoryGroup verifies the FFS placement policy: files
// cluster into their parent directory's cylinder group; directories
// spread across groups.
func TestFilesInheritDirectoryGroup(t *testing.T) {
	dev := blockdev.NewMem(16384, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{NGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/b", 0o755); err != nil {
		t.Fatal(err)
	}
	// Write files alternating between the two directories.
	for i := 0; i < 10; i++ {
		for _, d := range []string{"/a", "/b"} {
			p := fmt.Sprintf("%s/f%d", d, i)
			if err := fs.WriteFile(p, bytes.Repeat([]byte("x"), 8192), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Collect each file's first physical block and check they cluster by
	// directory, not by creation order.
	groupOf := func(p string) uint64 {
		ino, err := fs.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		in, err := fs.readInode(ino)
		if err != nil {
			t.Fatal(err)
		}
		return fs.groupOf(in.Direct[0])
	}
	ga := groupOf("/a/f0")
	gb := groupOf("/b/f0")
	for i := 1; i < 10; i++ {
		if g := groupOf(fmt.Sprintf("/a/f%d", i)); g != ga {
			t.Errorf("/a/f%d in group %d, dir group %d", i, g, ga)
		}
		if g := groupOf(fmt.Sprintf("/b/f%d", i)); g != gb {
			t.Errorf("/b/f%d in group %d, dir group %d", i, g, gb)
		}
	}
	// Two directories created back to back land in different groups
	// (inode-derived spread); if they collide the test setup is moot.
	if ga == gb {
		t.Skip("directories landed in the same group; spread policy is probabilistic by ino")
	}
}

// TestGroupSurvivesRemount: the Group field persists in the inode.
func TestGroupSurvivesRemount(t *testing.T) {
	dev := blockdev.NewMem(8192, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{NGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Lookup("/d/f")
	in, _ := fs.readInode(ino)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := fs2.readInode(ino)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Group != in.Group {
		t.Errorf("group %d after remount, was %d", in2.Group, in.Group)
	}
	// Appending after remount stays in the same group.
	if err := fs2.WriteAtIno(ino, bytes.Repeat([]byte("y"), 50000), 1); err != nil {
		t.Fatal(err)
	}
	in3, _ := fs2.readInode(ino)
	for i := 0; i < ndirect; i++ {
		if in3.Direct[i] != 0 && fs2.groupOf(in3.Direct[i]) != uint64(in.Group) {
			t.Errorf("block %d placed in group %d, want %d", i, fs2.groupOf(in3.Direct[i]), in.Group)
		}
	}
}

// TestDoubleIndirectTruncatePartial shrinks a file that uses the double
// indirect region down into the single-indirect region and verifies both
// content and block reclamation.
func TestDoubleIndirectTruncatePartial(t *testing.T) {
	dev := blockdev.NewMem(32768, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bs := blockdev.DefaultBlockSize
	// direct (12 blocks) + indirect (512) = 524 blocks; write 600 blocks
	// to enter double-indirect territory.
	size := 600 * bs
	data := bytes.Repeat([]byte("Z"), size)
	if err := fs.WriteFile("/big", data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Shrink to 100 blocks (single-indirect range).
	target := uint64(100 * bs)
	if err := fs.Truncate("/big", target); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != target || !bytes.Equal(got, data[:target]) {
		t.Fatal("content wrong after deep truncate")
	}
	ino, _ := fs.Lookup("/big")
	in, _ := fs.readInode(ino)
	if in.DIndirect != 0 {
		t.Error("double-indirect root not freed")
	}
	if in.Indirect == 0 {
		t.Error("single-indirect unexpectedly freed")
	}
	// Regrow past the old size — must reuse freed space without error.
	if err := fs.WriteAtIno(ino, data, 0); err != nil {
		t.Fatalf("regrow: %v", err)
	}
	got, _ = fs.ReadFile("/big")
	if !bytes.Equal(got, data) {
		t.Fatal("content wrong after regrow")
	}
}

// TestReadAtIsDirRejected and write-path mode checks.
func TestDirDataOpsRejected(t *testing.T) {
	dev := blockdev.NewMem(4096, blockdev.DefaultBlockSize)
	fs, err := Mkfs(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := fs.ReadAt("/d", buf, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("ReadAt(dir) = %v", err)
	}
	if err := fs.WriteAt("/d", buf, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("WriteAt(dir) = %v", err)
	}
	if err := fs.Truncate("/d", 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("Truncate(dir) = %v", err)
	}
	_ = io.EOF
}
