package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickOpsMatchReference drives the tree with generated operation
// sequences via testing/quick and compares every observable against a
// reference map.
func TestQuickOpsMatchReference(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		tr, _ := newTree(t)
		ref := map[string]string{}
		rng := rand.New(rand.NewPCG(seed, 99))
		for _, op := range ops {
			key := fmt.Sprintf("k%03d", op%512)
			switch op % 3 {
			case 0:
				val := fmt.Sprintf("v%d", rng.Uint32())
				if err := tr.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				ref[key] = val
			case 1:
				err := tr.Delete([]byte(key))
				_, had := ref[key]
				if had && err != nil {
					return false
				}
				if !had && !errors.Is(err, ErrNotFound) {
					return false
				}
				delete(ref, key)
			case 2:
				v, err := tr.Get([]byte(key))
				want, had := ref[key]
				if had && (err != nil || string(v) != want) {
					return false
				}
				if !had && !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		if tr.Len() != uint64(len(ref)) {
			return false
		}
		if _, err := tr.Check(); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanIsSorted: any insertion set scans back in sorted order
// with no duplicates or losses.
func TestQuickScanIsSorted(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr, _ := newTree(t)
		ref := map[string]bool{}
		for _, k := range keys {
			if len(k) == 0 || len(k) > tr.MaxKeyLen() {
				continue
			}
			if err := tr.Put(k, []byte("v")); err != nil {
				return false
			}
			ref[string(k)] = true
		}
		var got []string
		if err := tr.Scan(nil, nil, func(k, _ []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		if !sort.StringsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFloor(t *testing.T) {
	tr, _ := newTree(t)
	if _, _, err := tr.Floor([]byte("x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Floor on empty = %v", err)
	}
	for i := 0; i < 500; i += 10 {
		mustPut(t, tr, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	// Exact hit.
	k, v, err := tr.Floor([]byte("k0100"))
	if err != nil || string(k) != "k0100" || string(v) != "v100" {
		t.Errorf("exact Floor = %q/%q, %v", k, v, err)
	}
	// Between keys: floor is the lower neighbour.
	k, _, err = tr.Floor([]byte("k0105"))
	if err != nil || string(k) != "k0100" {
		t.Errorf("between Floor = %q, %v", k, err)
	}
	// Below all keys.
	if _, _, err := tr.Floor([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Errorf("below-all Floor = %v", err)
	}
	// Above all keys: floor is the max.
	k, _, err = tr.Floor([]byte("zzz"))
	if err != nil || string(k) != "k0490" {
		t.Errorf("above-all Floor = %q, %v", k, err)
	}
}

// TestFloorAcrossLeafBoundaries exercises the previous-leaf hop.
func TestFloorAcrossLeafBoundaries(t *testing.T) {
	tr, _ := newTree(t)
	// Many keys so multiple leaves exist.
	for i := 0; i < 2000; i++ {
		mustPut(t, tr, fmt.Sprintf("k%06d", i*2), "v") // even keys only
	}
	// Query odd keys: floor must be the even key below, including at
	// leaf boundaries.
	for i := 1; i < 4000; i += 97 {
		target := fmt.Sprintf("k%06d", i)
		k, _, err := tr.Floor([]byte(target))
		if err != nil {
			t.Fatalf("Floor(%s): %v", target, err)
		}
		want := fmt.Sprintf("k%06d", i-1)
		if i%2 == 0 {
			want = target
		}
		if string(k) != want {
			t.Fatalf("Floor(%s) = %s, want %s", target, k, want)
		}
	}
}

// TestQuickFloorMatchesReference: Floor agrees with a sorted-slice oracle.
func TestQuickFloorMatchesReference(t *testing.T) {
	tr, _ := newTree(t)
	var keys []string
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%05d", i*7)
		mustPut(t, tr, k, "v")
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := func(probe uint16) bool {
		target := fmt.Sprintf("k%05d", int(probe)%2200)
		k, _, err := tr.Floor([]byte(target))
		// Oracle: greatest key <= target.
		idx := sort.SearchStrings(keys, target)
		if idx < len(keys) && keys[idx] == target {
			return err == nil && string(k) == target
		}
		if idx == 0 {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && string(k) == keys[idx-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLargeKeysNearLimit stresses splits with keys at the maximum size.
func TestLargeKeysNearLimit(t *testing.T) {
	tr, _ := newTree(t)
	max := tr.MaxKeyLen()
	for i := 0; i < 60; i++ {
		k := bytes.Repeat([]byte{byte('a' + i%26)}, max-2)
		k = append(k, byte(i/26), byte(i%26))
		if err := tr.Put(k, bytes.Repeat([]byte("V"), 900)); err != nil {
			t.Fatalf("Put big key %d: %v", i, err)
		}
	}
	mustCheck(t, tr)
	if tr.Len() != 60 {
		t.Errorf("Len = %d", tr.Len())
	}
}
