package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pager"
	"repro/internal/redo"
	"repro/internal/undo"
)

// PageAllocator provides single-page allocation for tree growth. The
// volume implements it on top of the buddy allocator.
type PageAllocator interface {
	AllocPage() (uint64, error)
	FreePage(no uint64) error
}

// Header page field offsets.
const (
	hOffMagic  = 4
	hOffRoot   = 8
	hOffHeight = 16
	hOffNKeys  = 24
	treeMagic  = 0x68464144 // "hFAD"
)

// Stats counts tree operations for the traversal-accounting experiments.
type Stats struct {
	Descents      int64 // logical lookups/mutations that walked the tree
	LevelsTouched int64 // pages visited during descents
	Splits        int64
	Merges        int64
}

// Tree is a B+tree rooted at a header page. All methods are safe for
// concurrent use; mutations take an exclusive lock.
type Tree struct {
	pg     *pager.Pager
	alloc  PageAllocator
	hdrPno uint64

	mu     sync.RWMutex
	root   uint64
	height int // 1 = root is a leaf
	nkeys  uint64
	gen    uint64 // bumped on every mutation; lets cursors detect staleness

	statMu sync.Mutex
	stats  Stats
}

// Create allocates and initializes a new empty tree, returning it and the
// header page number by which it can be reopened.
func Create(pg *pager.Pager, alloc PageAllocator) (*Tree, error) {
	return CreateOp(pg, alloc, nil)
}

// CreateOp is Create with the creating operation's redo capture, so trees
// created inside a transaction (fulltext segments) recover with it.
func CreateOp(pg *pager.Pager, alloc PageAllocator, op *pager.Op) (*Tree, error) {
	hdr, err := alloc.AllocPage()
	if err != nil {
		return nil, err
	}
	rootPno, err := alloc.AllocPage()
	if err != nil {
		return nil, err
	}
	t := &Tree{pg: pg, alloc: alloc, hdrPno: hdr, root: rootPno, height: 1}
	// Initialize root leaf.
	rp, err := pg.AcquireZero(rootPno)
	if err != nil {
		return nil, err
	}
	initPage(rp.Data(), pageLeaf)
	pg.MarkDirtyRec(rp, op, redo.KindBtreeOp, encOp(opInit, []byte{pageLeaf}))
	pg.Release(rp)
	if err := t.writeHeaderOp(op); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from its header page.
func Open(pg *pager.Pager, alloc PageAllocator, headerPno uint64) (*Tree, error) {
	hp, err := pg.Acquire(headerPno)
	if err != nil {
		return nil, err
	}
	defer pg.Release(hp)
	d := hp.Data()
	if d[offType] != pageHeader || binary.LittleEndian.Uint32(d[hOffMagic:]) != treeMagic {
		return nil, fmt.Errorf("%w: page %d is not a tree header", ErrCorrupt, headerPno)
	}
	return &Tree{
		pg:     pg,
		alloc:  alloc,
		hdrPno: headerPno,
		root:   binary.LittleEndian.Uint64(d[hOffRoot:]),
		height: int(binary.LittleEndian.Uint64(d[hOffHeight:])),
		nkeys:  binary.LittleEndian.Uint64(d[hOffNKeys:]),
	}, nil
}

// HeaderPage returns the page number identifying this tree on the volume.
func (t *Tree) HeaderPage() uint64 { return t.hdrPno }

// Len returns the number of keys in the tree.
func (t *Tree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nkeys
}

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Stats returns a snapshot of operation counters.
func (t *Tree) Stats() Stats {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	return t.stats
}

func (t *Tree) addStats(descents, levels, splits, merges int64) {
	t.statMu.Lock()
	t.stats.Descents += descents
	t.stats.LevelsTouched += levels
	t.stats.Splits += splits
	t.stats.Merges += merges
	t.statMu.Unlock()
}

// writeHeader persists the header fields into the cached header page
// without logging a record: nkeys is a cross-transaction counter that
// recovery recounts from the leaves, and root/height changes are logged
// by the structure-modification system transactions that make them
// (writeHeaderOp).
func (t *Tree) writeHeader() error {
	return t.writeHeaderOp(nil)
}

// writeHeaderOp additionally emits a header range record into op — used
// at tree creation and by root-changing structure modifications, whose
// replay must see the new root/height.
func (t *Tree) writeHeaderOp(op *pager.Op) error {
	hp, err := t.pg.Acquire(t.hdrPno)
	if err != nil {
		return err
	}
	defer t.pg.Release(hp)
	d := hp.Data()
	hb := headerBytes(t.root, t.height, t.nkeys)
	copy(d[:len(hb)], hb)
	if op != nil {
		t.pg.MarkDirtyRec(hp, op, redo.KindRange, redo.EncodeRange(0, hb))
	} else {
		t.pg.MarkDirty(hp)
	}
	return nil
}

// MaxKeyLen returns the largest key this tree accepts.
func (t *Tree) MaxKeyLen() int { return t.pg.BlockSize() / 8 }

// maxInlineValue is the largest value stored inside a leaf cell.
func (t *Tree) maxInlineValue() int { return t.pg.BlockSize() / 4 }

// Get returns the value for key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(key)
}

func (t *Tree) getLocked(key []byte) ([]byte, error) {
	pno := t.root
	levels := int64(0)
	for {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return nil, err
		}
		p := pageRef{pg.Data()}
		levels++
		switch p.typ() {
		case pageInternal:
			idx, _, err := p.search(key)
			if err != nil {
				t.pg.Release(pg)
				return nil, err
			}
			if idx < p.ncells() {
				c, err := p.decodeCell(idx)
				if err != nil {
					t.pg.Release(pg)
					return nil, err
				}
				pno = c.child
			} else {
				pno = p.ptrA()
			}
			t.pg.Release(pg)
		case pageLeaf:
			idx, found, err := p.search(key)
			if err != nil {
				t.pg.Release(pg)
				return nil, err
			}
			if !found {
				t.pg.Release(pg)
				t.addStats(1, levels, 0, 0)
				return nil, ErrNotFound
			}
			c, err := p.decodeCell(idx)
			if err != nil {
				t.pg.Release(pg)
				return nil, err
			}
			var out []byte
			if c.overflow == 0 {
				out = make([]byte, len(c.val))
				copy(out, c.val)
				t.pg.Release(pg)
			} else {
				ovf, total := c.overflow, c.totalLen
				t.pg.Release(pg)
				out, err = t.readOverflow(ovf, total)
				if err != nil {
					return nil, err
				}
			}
			t.addStats(1, levels, 0, 0)
			return out, nil
		default:
			t.pg.Release(pg)
			return nil, fmt.Errorf("%w: page %d type %d in descent", ErrCorrupt, pno, p.typ())
		}
	}
}

// cellValue materializes a leaf cell's full value — the inline bytes
// copied out, or the overflow chain reassembled. Used by mutation paths
// to capture a key's old value for its undo record.
func (t *Tree) cellValue(c cell) ([]byte, error) {
	if c.overflow == 0 {
		return append([]byte(nil), c.val...), nil
	}
	return t.readOverflow(c.overflow, c.totalLen)
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNotFound):
		return false, nil
	default:
		return false, err
	}
}

// pathElem records one step of a root-to-leaf descent.
type pathElem struct {
	pno uint64
	idx int // cell index taken; ncells() means ptrA (rightmost)
}

// descend walks from the root to the leaf that should hold key, returning
// the path of internal steps and the leaf page number.
func (t *Tree) descend(key []byte) ([]pathElem, uint64, error) {
	var path []pathElem
	pno := t.root
	for level := 0; level < t.height-1; level++ {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return nil, 0, err
		}
		p := pageRef{pg.Data()}
		if p.typ() != pageInternal {
			t.pg.Release(pg)
			return nil, 0, fmt.Errorf("%w: expected internal page at %d", ErrCorrupt, pno)
		}
		idx, _, err := p.search(key)
		if err != nil {
			t.pg.Release(pg)
			return nil, 0, err
		}
		var child uint64
		if idx < p.ncells() {
			c, err := p.decodeCell(idx)
			if err != nil {
				t.pg.Release(pg)
				return nil, 0, err
			}
			child = c.child
		} else {
			child = p.ptrA()
		}
		t.pg.Release(pg)
		path = append(path, pathElem{pno, idx})
		pno = child
	}
	return path, pno, nil
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, val []byte) error {
	return t.PutOp(nil, key, val)
}

// PutOp is Put emitting physiological redo records into op (nil = no
// logging): a typed cell-put record for the landing leaf, range records
// for overflow pages, and — when the insert splits — an auto-committed
// system transaction for the structural change.
func (t *Tree) PutOp(op *pager.Op, key, val []byte) error {
	if len(key) > t.MaxKeyLen() {
		return fmt.Errorf("%w: %d > %d", ErrKeyTooBig, len(key), t.MaxKeyLen())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.putLocked(op, key, val)
}

// PutMany inserts or replaces a batch of key/value pairs under a single
// lock acquisition. Pairs are applied in sorted key order so successive
// descents land on the same or adjacent leaves (one descent *region* per
// batch instead of one random walk per pair) — the batched multi-put that
// index stores expose for group-committed ingest. Duplicate keys within
// the batch resolve last-wins in input order.
func (t *Tree) PutMany(keys, vals [][]byte) error {
	return t.PutManyOp(nil, keys, vals)
}

// PutManyOp is PutMany emitting redo records into op.
func (t *Tree) PutManyOp(op *pager.Op, keys, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("btree: PutMany got %d keys, %d vals", len(keys), len(vals))
	}
	for _, k := range keys {
		if len(k) > t.MaxKeyLen() {
			return fmt.Errorf("%w: %d > %d", ErrKeyTooBig, len(k), t.MaxKeyLen())
		}
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, i := range order {
		if err := t.putLocked(op, keys[i], vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// putLocked is Put's body; the caller holds t.mu exclusively and has
// validated the key length.
func (t *Tree) putLocked(op *pager.Op, key, val []byte) error {
	t.gen++

	path, leafPno, err := t.descend(key)
	if err != nil {
		return err
	}
	t.addStats(1, int64(len(path)+1), 0, 0)

	// Prepare the value: spill to overflow chain if large.
	var inlineVal []byte
	var ovfPage uint64
	totalLen := uint64(len(val))
	if len(val) > t.maxInlineValue() {
		ovfPage, err = t.writeOverflow(op, val)
		if err != nil {
			return err
		}
	} else {
		inlineVal = val
	}

	pg, err := t.pg.Acquire(leafPno)
	if err != nil {
		return err
	}
	p := pageRef{pg.Data()}
	idx, found, err := p.search(key)
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	if found {
		// Replace: free any old overflow chain, remove, reinsert. One put
		// record covers both halves — replay re-executes the replacement.
		c, err := p.decodeCell(idx)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		if op.UndoEnabled() {
			// Inverse restores the old value; read it (overflow included)
			// before the chain is freed.
			old, err := t.cellValue(c)
			if err != nil {
				t.pg.Release(pg)
				return err
			}
			op.StageUndo(undo.KeyPut(t.hdrPno, key, old))
		}
		if c.overflow != 0 {
			if err := t.freeOverflow(c.overflow); err != nil {
				t.pg.Release(pg)
				return err
			}
		}
		p.removeCell(idx)
	} else {
		op.StageUndo(undo.KeyDel(t.hdrPno, key))
	}
	enc := encodeLeafCell(nil, key, inlineVal, totalLen, ovfPage)
	if p.insertRaw(idx, enc) {
		t.pg.MarkDirtyRec(pg, op, redo.KindBtreeOp, encOp(opPut, enc))
		t.pg.Release(pg)
		if !found {
			t.nkeys++
		}
		return t.writeHeader()
	}
	// Leaf is full: split. insertRaw left the page unchanged.
	err = t.splitLeafAndInsert(op, pg, leafPno, idx, enc, path)
	if err != nil {
		return err
	}
	if !found {
		t.nkeys++
	}
	return t.writeHeader()
}

// splitLeafAndInsert splits the (pinned) full leaf, inserting the encoded
// cell at logical index idx across the split pair, then propagates the new
// separator upward. Consumes the pin on pg.
//
// The structural change (cell redistribution, chain stitch, separator
// propagation, root growth) is logged as one auto-committed *system
// transaction*: neighbours may commit records that target the pages the
// split creates, so recovery must redo the split whether or not this
// operation's own transaction commits. The inserted cell itself belongs
// to the enclosing operation and is logged into op, after the split
// records, as an ordinary put against whichever half it landed on —
// replay re-partitions the committed cells around the recorded separator
// and then re-inserts the cell, so the always-redone split never carries
// the (possibly uncommitted) new cell.
func (t *Tree) splitLeafAndInsert(op *pager.Op, pg *pager.Page, leafPno uint64, idx int, enc []byte, path []pathElem) error {
	p := pageRef{pg.Data()}
	n := p.ncells()
	// Collect raw cells plus the new one at idx.
	raws := make([][]byte, 0, n+1)
	keys := make([][]byte, 0, n+1)
	for i := 0; i < n; i++ {
		off := p.slot(i)
		sz := p.cellLenAt(off)
		raw := make([]byte, sz)
		copy(raw, p.data[off:off+sz])
		c, err := p.decodeCell(i)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		k := make([]byte, len(c.key))
		copy(k, c.key)
		raws = append(raws, raw)
		keys = append(keys, k)
	}
	newKey := decodeKeyFromRaw(enc)
	raws = append(raws[:idx], append([][]byte{enc}, raws[idx:]...)...)
	keys = append(keys[:idx], append([][]byte{newKey}, keys[idx:]...)...)

	// Split point by bytes: grow the left side toward half the total but
	// never beyond page capacity, so max-size cells cannot overflow either
	// half.
	total := 0
	for _, r := range raws {
		total += len(r) + 2
	}
	capacity := len(pg.Data()) - hdrSize
	splitAt, acc := 0, 0
	for i, r := range raws {
		sz := len(r) + 2
		if splitAt > 0 && (acc >= total/2 || acc+sz > capacity) {
			break
		}
		acc += sz
		splitAt = i + 1
	}
	if splitAt >= len(raws) {
		splitAt = len(raws) - 1
	}

	rightPno, err := t.alloc.AllocPage()
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	rpg, err := t.pg.AcquireZero(rightPno)
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	rp := initPage(rpg.Data(), pageLeaf)

	oldNext := p.ptrA()
	oldPrev := p.ptrB()
	// Rewrite left in place.
	lp := initPage(pg.Data(), pageLeaf)
	for i := 0; i < splitAt; i++ {
		if !lp.insertRaw(i, raws[i]) {
			t.pg.Release(rpg)
			t.pg.Release(pg)
			return fmt.Errorf("%w: split left overflow", ErrCorrupt)
		}
	}
	for i := splitAt; i < len(raws); i++ {
		if !rp.insertRaw(i-splitAt, raws[i]) {
			t.pg.Release(rpg)
			t.pg.Release(pg)
			return fmt.Errorf("%w: split right overflow", ErrCorrupt)
		}
	}
	// Fix leaf chain: oldPrev <-> left <-> right <-> oldNext.
	rp.setPtrA(oldNext)
	rp.setPtrB(leafPno)
	lp.setPtrA(rightPno)
	lp.setPtrB(oldPrev)
	sep := keys[splitAt-1]
	sys := op.NewSys()
	t.pg.MarkDirtyRec(pg, sys, redo.KindBtreeOp,
		encOp(opSplitLeaf, u64b(rightPno), keyb(sep)))
	t.pg.MarkDirty(rpg)
	// The enclosing operation's cell, stamped after the split records so
	// replay lands it on the rebuilt half.
	if idx < splitAt {
		t.pg.MarkDirtyRec(pg, op, redo.KindBtreeOp, encOp(opPut, enc))
	} else {
		t.pg.MarkDirtyRec(rpg, op, redo.KindBtreeOp, encOp(opPut, enc))
	}
	t.pg.Release(rpg)
	t.pg.Release(pg)
	if oldNext != 0 {
		npg, err := t.pg.Acquire(oldNext)
		if err != nil {
			return err
		}
		pageRef{npg.Data()}.setPtrB(rightPno)
		t.pg.MarkDirtyRec(npg, sys, redo.KindRange, redo.EncodeRange(offPtrB, u64b(rightPno)))
		t.pg.Release(npg)
	}
	t.addStats(0, 0, 1, 0)
	err = t.insertSeparator(sys, path, sep, leafPno, rightPno)
	// Append whatever was staged even on error: each record was staged
	// right after its mutation landed in cache, so the log stays
	// consistent with the (possibly partially split) in-cache tree —
	// and the enclosing op's own records, which beginOp commits even on
	// failure, may already target the new right page.
	aerr := sys.AppendSys()
	if err != nil {
		return err
	}
	return aerr
}

// decodeKeyFromRaw extracts the key bytes from an encoded cell.
func decodeKeyFromRaw(raw []byte) []byte {
	klen, n := binary.Uvarint(raw)
	return raw[n : n+int(klen)]
}

// insertSeparator inserts (sep → leftPno) into the parent at the end of
// path, where the existing reference at that position currently reaches
// leftPno and must now reach rightPno. Splits parents as needed. All
// records go into sys — the structure modification's system transaction.
func (t *Tree) insertSeparator(sys *pager.Op, path []pathElem, sep []byte, leftPno, rightPno uint64) error {
	if len(path) == 0 {
		// Split the root: create a new internal root.
		newRoot, err := t.alloc.AllocPage()
		if err != nil {
			return err
		}
		pg, err := t.pg.AcquireZero(newRoot)
		if err != nil {
			return err
		}
		p := initPage(pg.Data(), pageInternal)
		enc := encodeInternalCell(nil, sep, leftPno)
		if !p.insertRaw(0, enc) {
			t.pg.Release(pg)
			return fmt.Errorf("%w: root separator does not fit", ErrCorrupt)
		}
		p.setPtrA(rightPno)
		t.pg.MarkDirtyRec(pg, sys, redo.KindBtreeOp,
			encOp(opNewRoot, u64b(leftPno), u64b(rightPno), keyb(sep)))
		t.pg.Release(pg)
		t.root = newRoot
		t.height++
		// Replay must see the new root: the header record rides the same
		// system transaction.
		return t.writeHeaderOp(sys)
	}

	parent := path[len(path)-1]
	pg, err := t.pg.Acquire(parent.pno)
	if err != nil {
		return err
	}
	p := pageRef{pg.Data()}
	// The child pointer at parent.idx must be redirected to rightPno; the
	// new cell (sep, leftPno) is inserted at parent.idx.
	if parent.idx < p.ncells() {
		// Existing cell keeps its key but child becomes rightPno.
		c, err := p.decodeCell(parent.idx)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		k := make([]byte, len(c.key))
		copy(k, c.key)
		p.removeCell(parent.idx)
		encOld := encodeInternalCell(nil, k, rightPno)
		if !p.insertRaw(parent.idx, encOld) {
			// Removing then failing to reinsert would corrupt the page;
			// removeCell only moved slots, so re-adding must succeed
			// because the cell was just removed. Compaction guarantees it.
			t.pg.Release(pg)
			return fmt.Errorf("%w: reinsert of redirected cell failed", ErrCorrupt)
		}
		t.pg.MarkDirtyRec(pg, sys, redo.KindBtreeOp,
			encOp(opRedirect, keyb(k), u64b(rightPno)))
	} else {
		p.setPtrA(rightPno)
		t.pg.MarkDirtyRec(pg, sys, redo.KindRange, redo.EncodeRange(offPtrA, u64b(rightPno)))
	}
	encNew := encodeInternalCell(nil, sep, leftPno)
	if p.insertRaw(parent.idx, encNew) {
		t.pg.MarkDirtyRec(pg, sys, redo.KindBtreeOp, encOp(opPut, encNew))
		t.pg.Release(pg)
		return nil
	}
	// Parent full: split it.
	return t.splitInternalAndInsert(sys, pg, parent.pno, parent.idx, sep, leftPno, path[:len(path)-1])
}

// splitInternalAndInsert splits the (pinned) full internal node while
// inserting cell (sep, leftPno) at index idx. Consumes the pin. Internal
// pages are mutated only by system transactions, so replay re-executes
// the identical middle-cell split against identical cells.
func (t *Tree) splitInternalAndInsert(sys *pager.Op, pg *pager.Page, pno uint64, idx int, sep []byte, leftPno uint64, path []pathElem) error {
	p := pageRef{pg.Data()}
	n := p.ncells()
	type icell struct {
		key   []byte
		child uint64
	}
	cells := make([]icell, 0, n+1)
	for i := 0; i < n; i++ {
		c, err := p.decodeCell(i)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		k := make([]byte, len(c.key))
		copy(k, c.key)
		cells = append(cells, icell{k, c.child})
	}
	newCell := icell{append([]byte(nil), sep...), leftPno}
	cells = append(cells[:idx], append([]icell{newCell}, cells[idx:]...)...)
	rightMost := p.ptrA()

	// Choose middle cell m to promote.
	m := len(cells) / 2
	promoted := cells[m]

	rightPno, err := t.alloc.AllocPage()
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	rpg, err := t.pg.AcquireZero(rightPno)
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	rp := initPage(rpg.Data(), pageInternal)
	for i := m + 1; i < len(cells); i++ {
		enc := encodeInternalCell(nil, cells[i].key, cells[i].child)
		if !rp.insertRaw(i-m-1, enc) {
			t.pg.Release(rpg)
			t.pg.Release(pg)
			return fmt.Errorf("%w: internal split right overflow", ErrCorrupt)
		}
	}
	rp.setPtrA(rightMost)

	lp := initPage(pg.Data(), pageInternal)
	for i := 0; i < m; i++ {
		enc := encodeInternalCell(nil, cells[i].key, cells[i].child)
		if !lp.insertRaw(i, enc) {
			t.pg.Release(rpg)
			t.pg.Release(pg)
			return fmt.Errorf("%w: internal split left overflow", ErrCorrupt)
		}
	}
	lp.setPtrA(promoted.child)

	t.pg.MarkDirtyRec(pg, sys, redo.KindBtreeOp,
		encOp(opSplitInternal, u64b(rightPno), u64b(leftPno), keyb(sep)))
	t.pg.MarkDirty(rpg)
	t.pg.Release(rpg)
	t.pg.Release(pg)
	t.addStats(0, 0, 1, 0)
	return t.insertSeparator(sys, path, promoted.key, pno, rightPno)
}

// Delete removes key from the tree, returning ErrNotFound if absent.
func (t *Tree) Delete(key []byte) error {
	return t.DeleteOp(nil, key)
}

// DeleteOp is Delete emitting a typed delete record into op. When op is
// non-nil, merge rebalancing of an underfull leaf is *deferred* until the
// deleting transaction has committed (via op.Defer): a merge is a system
// transaction redone unconditionally at recovery, and running it while
// the delete is still uncommitted would let replay pack the undeleted
// cell plus the whole sibling into one page. Lazy merging is optional
// work, so deferral costs nothing but a short-lived underfull node.
func (t *Tree) DeleteOp(op *pager.Op, key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++

	path, leafPno, err := t.descend(key)
	if err != nil {
		return err
	}
	t.addStats(1, int64(len(path)+1), 0, 0)

	pg, err := t.pg.Acquire(leafPno)
	if err != nil {
		return err
	}
	p := pageRef{pg.Data()}
	idx, found, err := p.search(key)
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	if !found {
		t.pg.Release(pg)
		return ErrNotFound
	}
	c, err := p.decodeCell(idx)
	if err != nil {
		t.pg.Release(pg)
		return err
	}
	if op.UndoEnabled() {
		// Inverse re-inserts the old value; read it (overflow included)
		// before the chain is freed.
		old, err := t.cellValue(c)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		op.StageUndo(undo.KeyPut(t.hdrPno, key, old))
	}
	if c.overflow != 0 {
		if err := t.freeOverflow(c.overflow); err != nil {
			t.pg.Release(pg)
			return err
		}
	}
	p.removeCell(idx)
	t.pg.MarkDirtyRec(pg, op, redo.KindBtreeOp, encOp(opDel, key))
	underfull := p.usedBytes() < len(pg.Data())/4
	t.pg.Release(pg)
	t.nkeys--

	if underfull && len(path) > 0 {
		if op != nil {
			k := append([]byte(nil), key...)
			op.Defer(func(sys *pager.Op) error { return t.Rebalance(sys, k) })
		} else if err := t.maybeMerge(nil, path, leafPno); err != nil {
			return err
		}
	}
	return t.writeHeader()
}

// Rebalance re-checks the leaf containing key and merges it with a
// sibling if it is underfull — the deferred half of DeleteOp, run after
// the deleting transaction committed, with sys as the merge's system
// transaction capture.
func (t *Tree) Rebalance(sys *pager.Op, key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++

	path, leafPno, err := t.descend(key)
	if err != nil {
		return err
	}
	if len(path) == 0 {
		return nil
	}
	pg, err := t.pg.Acquire(leafPno)
	if err != nil {
		return err
	}
	underfull := pageRef{pg.Data()}.usedBytes() < len(pg.Data())/4
	t.pg.Release(pg)
	if !underfull {
		return nil
	}
	if err := t.maybeMerge(sys, path, leafPno); err != nil {
		return err
	}
	return t.writeHeader()
}

// maybeMerge attempts to merge the node at nodePno (whose parent path is
// given) with an adjacent sibling if their combined cells fit in one page.
// Lazy rebalancing: if no merge fits, the tree is left as is. Records go
// into sys (nil = unlogged).
func (t *Tree) maybeMerge(sys *pager.Op, path []pathElem, nodePno uint64) error {
	parent := path[len(path)-1]
	ppg, err := t.pg.Acquire(parent.pno)
	if err != nil {
		return err
	}
	pp := pageRef{ppg.Data()}
	nc := pp.ncells()

	// Identify left/right siblings of the child at parent.idx.
	childAt := func(i int) (uint64, error) {
		if i < nc {
			c, err := pp.decodeCell(i)
			if err != nil {
				return 0, err
			}
			return c.child, nil
		}
		return pp.ptrA(), nil
	}

	cur, err := childAt(parent.idx)
	if err != nil {
		t.pg.Release(ppg)
		return err
	}
	if cur != nodePno {
		// Path is stale (shouldn't happen under the tree lock); skip.
		t.pg.Release(ppg)
		return nil
	}

	// Try merging cur with its right sibling first, else with its left.
	tryPairs := [][2]int{}
	if parent.idx < nc {
		tryPairs = append(tryPairs, [2]int{parent.idx, parent.idx + 1})
	}
	if parent.idx > 0 {
		tryPairs = append(tryPairs, [2]int{parent.idx - 1, parent.idx})
	}

	for _, pair := range tryPairs {
		li, ri := pair[0], pair[1]
		leftPno, err := childAt(li)
		if err != nil {
			t.pg.Release(ppg)
			return err
		}
		rightPno, err := childAt(ri)
		if err != nil {
			t.pg.Release(ppg)
			return err
		}
		merged, err := t.tryMergePair(sys, pp, leftPno, rightPno, li)
		if err != nil {
			t.pg.Release(ppg)
			return err
		}
		if merged {
			t.pg.MarkDirtyRec(ppg, sys, redo.KindBtreeOp,
				encOp(opMerge, u64b(leftPno), u64b(rightPno)))
			underfull := pp.usedBytes() < len(ppg.Data())/4
			rootEmpty := parent.pno == t.root && pp.ncells() == 0
			var newRoot uint64
			if rootEmpty {
				newRoot = pp.ptrA()
			}
			t.pg.Release(ppg)
			t.addStats(0, 0, 0, 1)
			if rootEmpty {
				// Collapse the root.
				if err := t.freePage(parent.pno); err != nil {
					return err
				}
				t.root = newRoot
				t.height--
				// Replay must see the shorter tree.
				return t.writeHeaderOp(sys)
			}
			if underfull && len(path) > 1 {
				return t.maybeMerge(sys, path[:len(path)-1], parent.pno)
			}
			return nil
		}
	}
	t.pg.Release(ppg)
	return nil
}

// tryMergePair merges right into left if all cells fit in one page.
// li is the parent cell index referring to left. On success the parent
// cell for left is removed and the reference to right is redirected to
// left; the right page is freed. Parent page pp must be pinned by caller,
// who emits the covering opMerge record; only the next-leaf back-pointer
// stitch is recorded here.
func (t *Tree) tryMergePair(sys *pager.Op, pp pageRef, leftPno, rightPno uint64, li int) (bool, error) {
	lpg, err := t.pg.Acquire(leftPno)
	if err != nil {
		return false, err
	}
	lp := pageRef{lpg.Data()}
	rpg, err := t.pg.Acquire(rightPno)
	if err != nil {
		t.pg.Release(lpg)
		return false, err
	}
	rp := pageRef{rpg.Data()}

	if lp.typ() != rp.typ() {
		t.pg.Release(rpg)
		t.pg.Release(lpg)
		return false, fmt.Errorf("%w: sibling type mismatch", ErrCorrupt)
	}

	// Size check: combined used bytes (+ separator cell for internals).
	need := lp.usedBytes() + rp.usedBytes()
	sepCellSize := 0
	var sepKey []byte
	if lp.typ() == pageInternal {
		c, err := pp.decodeCell(li)
		if err != nil {
			t.pg.Release(rpg)
			t.pg.Release(lpg)
			return false, err
		}
		sepKey = append([]byte(nil), c.key...)
		sepCellSize = encodedInternalCellSize(len(sepKey)) + 2
		need += sepCellSize
	}
	if need > len(lpg.Data())-hdrSize {
		t.pg.Release(rpg)
		t.pg.Release(lpg)
		return false, nil
	}

	// The size check above guarantees the absorb loop fits; a failure here
	// means the accounting is broken, so surface corruption.
	absorbFail := func() (bool, error) {
		t.pg.Release(rpg)
		t.pg.Release(lpg)
		return false, fmt.Errorf("%w: merge overflow despite size check", ErrCorrupt)
	}
	if lp.typ() == pageInternal {
		// Absorb left.ptrA under the separator key, then right's cells.
		enc := encodeInternalCell(nil, sepKey, lp.ptrA())
		if !lp.insertRaw(lp.ncells(), enc) {
			return absorbFail()
		}
		for i := 0; i < rp.ncells(); i++ {
			off := rp.slot(i)
			sz := rp.cellLenAt(off)
			raw := make([]byte, sz)
			copy(raw, rp.data[off:off+sz])
			if !lp.insertRaw(lp.ncells(), raw) {
				return absorbFail()
			}
		}
		lp.setPtrA(rp.ptrA())
	} else {
		for i := 0; i < rp.ncells(); i++ {
			off := rp.slot(i)
			sz := rp.cellLenAt(off)
			raw := make([]byte, sz)
			copy(raw, rp.data[off:off+sz])
			if !lp.insertRaw(lp.ncells(), raw) {
				return absorbFail()
			}
		}
		// Fix leaf chain: left <-> right.next.
		next := rp.ptrA()
		lp.setPtrA(next)
		if next != 0 {
			npg, err := t.pg.Acquire(next)
			if err != nil {
				t.pg.Release(rpg)
				t.pg.Release(lpg)
				return false, err
			}
			pageRef{npg.Data()}.setPtrB(leftPno)
			t.pg.MarkDirtyRec(npg, sys, redo.KindRange, redo.EncodeRange(offPtrB, u64b(leftPno)))
			t.pg.Release(npg)
		}
	}
	t.pg.MarkDirty(lpg)
	t.pg.Release(rpg)
	t.pg.Release(lpg)

	// Parent: remove the cell for left; redirect right's reference to left.
	ri := li + 1
	if ri < pp.ncells() {
		c, err := pp.decodeCell(ri)
		if err != nil {
			return false, err
		}
		k := append([]byte(nil), c.key...)
		pp.removeCell(ri)
		enc := encodeInternalCell(nil, k, leftPno)
		if !pp.insertRaw(ri, enc) {
			return false, fmt.Errorf("%w: parent redirect failed", ErrCorrupt)
		}
	} else {
		pp.setPtrA(leftPno)
	}
	pp.removeCell(li)
	return true, t.freePage(rightPno)
}

func (t *Tree) freePage(pno uint64) error {
	if err := t.pg.Invalidate(pno); err != nil {
		return err
	}
	return t.alloc.FreePage(pno)
}

// Sync flushes the tree's header; page data is flushed by the volume.
func (t *Tree) Sync() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.writeHeader()
}

// RecountKeys walks the leaf chain and resets the header key count.
// Physiological logging does not journal nkeys — it is a cross-
// transaction counter no single transaction's redo can own — so recovery
// recounts it after replay (the volume calls this on every unclean open,
// where it rides the same walk that rebuilds the allocator).
func (t *Tree) RecountKeys() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	pno := t.root
	for level := 0; level < t.height-1; level++ {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		p := pageRef{pg.Data()}
		if p.typ() != pageInternal || p.ncells() == 0 {
			next := p.ptrA()
			t.pg.Release(pg)
			if p.typ() != pageInternal {
				return fmt.Errorf("%w: recount hit type %d at level %d", ErrCorrupt, p.typ(), level)
			}
			pno = next
			continue
		}
		c, err := p.decodeCell(0)
		if err != nil {
			t.pg.Release(pg)
			return err
		}
		t.pg.Release(pg)
		pno = c.child
	}
	var n uint64
	for pno != 0 {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		p := pageRef{pg.Data()}
		if p.typ() != pageLeaf {
			t.pg.Release(pg)
			return fmt.Errorf("%w: recount hit type %d in leaf chain", ErrCorrupt, p.typ())
		}
		n += uint64(p.ncells())
		pno = p.ptrA()
		t.pg.Release(pg)
	}
	if n == t.nkeys {
		return nil
	}
	t.nkeys = n
	return t.writeHeader()
}

// Drop frees every page owned by the tree — nodes, overflow chains, and
// the header. The tree must not be used afterwards.
func (t *Tree) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++

	var freeWalk func(pno uint64, level int) error
	freeWalk = func(pno uint64, level int) error {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		p := pageRef{pg.Data()}
		var children []uint64
		var overflows []uint64
		switch p.typ() {
		case pageInternal:
			for i := 0; i < p.ncells(); i++ {
				c, err := p.decodeCell(i)
				if err != nil {
					t.pg.Release(pg)
					return err
				}
				children = append(children, c.child)
			}
			children = append(children, p.ptrA())
		case pageLeaf:
			for i := 0; i < p.ncells(); i++ {
				c, err := p.decodeCell(i)
				if err != nil {
					t.pg.Release(pg)
					return err
				}
				if c.overflow != 0 {
					overflows = append(overflows, c.overflow)
				}
			}
		default:
			t.pg.Release(pg)
			return fmt.Errorf("%w: drop walk hit page type %d", ErrCorrupt, p.typ())
		}
		t.pg.Release(pg)
		for _, c := range children {
			if err := freeWalk(c, level+1); err != nil {
				return err
			}
		}
		for _, o := range overflows {
			if err := t.freeOverflow(o); err != nil {
				return err
			}
		}
		return t.freePage(pno)
	}
	if err := freeWalk(t.root, 0); err != nil {
		return err
	}
	if err := t.freePage(t.hdrPno); err != nil {
		return err
	}
	t.root, t.height, t.nkeys = 0, 0, 0
	return nil
}
