package btree

import (
	"bytes"
	"fmt"
)

// CheckResult summarizes a tree integrity walk.
type CheckResult struct {
	Pages    int      // node pages visited (excluding overflow)
	Keys     uint64   // total keys found in leaves
	Leaves   int      // leaf count
	Depth    int      // measured depth
	AllPages []uint64 // every page owned by the tree (nodes, overflow, header)
}

// Check walks the entire tree verifying structural invariants:
//
//   - every page is visited exactly once (no cycles or sharing)
//   - keys within each node are strictly ascending
//   - all keys in child c of internal cell (k, c) are ≤ k
//   - all keys under the rightmost pointer are > the last cell key
//   - all leaves are at the same depth
//   - the leaf chain (ptrA/ptrB) is consistent with tree order
//   - the header's key count matches the actual count
//
// It returns the set of owned pages so the volume checker can cross-check
// against the allocator.
func (t *Tree) Check() (*CheckResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	res := &CheckResult{AllPages: []uint64{t.hdrPno}}
	seen := map[uint64]bool{t.hdrPno: true}

	var leafChain []uint64
	var walk func(pno uint64, depth int, upper []byte, hasUpper bool, lower []byte, hasLower bool) error
	walk = func(pno uint64, depth int, upper []byte, hasUpper bool, lower []byte, hasLower bool) error {
		if seen[pno] {
			return fmt.Errorf("%w: page %d reached twice", ErrCorrupt, pno)
		}
		seen[pno] = true
		res.AllPages = append(res.AllPages, pno)
		res.Pages++

		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		defer t.pg.Release(pg)
		p := pageRef{pg.Data()}

		var prevKey []byte
		checkOrder := func(k []byte, i int) error {
			if i > 0 && bytes.Compare(prevKey, k) >= 0 {
				return fmt.Errorf("%w: page %d keys out of order at cell %d", ErrCorrupt, pno, i)
			}
			if hasUpper && bytes.Compare(k, upper) > 0 {
				return fmt.Errorf("%w: page %d key exceeds separator bound", ErrCorrupt, pno)
			}
			if hasLower && bytes.Compare(k, lower) <= 0 {
				return fmt.Errorf("%w: page %d key below lower bound", ErrCorrupt, pno)
			}
			prevKey = append(prevKey[:0], k...)
			return nil
		}

		switch p.typ() {
		case pageLeaf:
			if res.Depth == 0 {
				res.Depth = depth
			} else if depth != res.Depth {
				return fmt.Errorf("%w: leaf %d at depth %d, others at %d", ErrCorrupt, pno, depth, res.Depth)
			}
			for i := 0; i < p.ncells(); i++ {
				c, err := p.decodeCell(i)
				if err != nil {
					return fmt.Errorf("page %d cell %d: %w", pno, i, err)
				}
				if err := checkOrder(c.key, i); err != nil {
					return err
				}
				res.Keys++
				if c.overflow != 0 {
					if err := t.checkOverflowChain(c.overflow, c.totalLen, seen, res); err != nil {
						return err
					}
				}
			}
			res.Leaves++
			leafChain = append(leafChain, pno)
			return nil
		case pageInternal:
			if p.ptrA() == 0 {
				return fmt.Errorf("%w: internal page %d missing rightmost child", ErrCorrupt, pno)
			}
			childLower, childHasLower := lower, hasLower
			for i := 0; i < p.ncells(); i++ {
				c, err := p.decodeCell(i)
				if err != nil {
					return fmt.Errorf("page %d cell %d: %w", pno, i, err)
				}
				if err := checkOrder(c.key, i); err != nil {
					return err
				}
				if err := walk(c.child, depth+1, c.key, true, childLower, childHasLower); err != nil {
					return err
				}
				childLower, childHasLower = append([]byte(nil), c.key...), true
			}
			return walk(p.ptrA(), depth+1, upper, hasUpper, childLower, childHasLower)
		default:
			return fmt.Errorf("%w: page %d has type %d", ErrCorrupt, pno, p.typ())
		}
	}

	if err := walk(t.root, 1, nil, false, nil, false); err != nil {
		return nil, err
	}
	if res.Keys != t.nkeys {
		return nil, fmt.Errorf("%w: header says %d keys, found %d", ErrCorrupt, t.nkeys, res.Keys)
	}
	if res.Depth != t.height {
		return nil, fmt.Errorf("%w: header says height %d, measured %d", ErrCorrupt, t.height, res.Depth)
	}
	if err := t.checkLeafChain(leafChain); err != nil {
		return nil, err
	}
	return res, nil
}

func (t *Tree) checkOverflowChain(pno uint64, totalLen uint64, seen map[uint64]bool, res *CheckResult) error {
	var got uint64
	for pno != 0 {
		if seen[pno] {
			return fmt.Errorf("%w: overflow page %d reached twice", ErrCorrupt, pno)
		}
		seen[pno] = true
		res.AllPages = append(res.AllPages, pno)
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		d := pg.Data()
		if d[offType] != pageOverflow {
			t.pg.Release(pg)
			return fmt.Errorf("%w: page %d in overflow chain has type %d", ErrCorrupt, pno, d[offType])
		}
		used := int(uint16(d[2]) | uint16(d[3])<<8)
		got += uint64(used)
		next := pageRef{d}.ptrA()
		t.pg.Release(pg)
		pno = next
	}
	if got != totalLen {
		return fmt.Errorf("%w: overflow chain has %d bytes, cell says %d", ErrCorrupt, got, totalLen)
	}
	return nil
}

// checkLeafChain verifies that following ptrA from the first leaf visits
// exactly the leaves of the in-order walk, and that ptrB mirrors it.
func (t *Tree) checkLeafChain(inOrder []uint64) error {
	if len(inOrder) == 0 {
		return nil
	}
	var prev uint64
	cur := inOrder[0]
	for i, want := range inOrder {
		if cur != want {
			return fmt.Errorf("%w: leaf chain diverges at position %d: chain %d, walk %d", ErrCorrupt, i, cur, want)
		}
		pg, err := t.pg.Acquire(cur)
		if err != nil {
			return err
		}
		p := pageRef{pg.Data()}
		if p.ptrB() != prev {
			t.pg.Release(pg)
			return fmt.Errorf("%w: leaf %d prev pointer %d, want %d", ErrCorrupt, cur, p.ptrB(), prev)
		}
		next := p.ptrA()
		t.pg.Release(pg)
		prev = cur
		cur = next
	}
	if cur != 0 {
		return fmt.Errorf("%w: leaf chain continues past last leaf to %d", ErrCorrupt, cur)
	}
	return nil
}
