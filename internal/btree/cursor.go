package btree

import (
	"bytes"

	"repro/internal/pager"
)

// Scan visits every key in [lo, hi) in ascending order, calling fn with
// copies of each key and value. A nil lo starts at the first key; a nil hi
// scans to the end. fn returning false stops the scan early. The tree's
// read lock is held for the duration, so fn must not mutate the tree.
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()

	leaf, idx, err := t.seekLeaf(lo)
	if err != nil {
		return err
	}
	levels := int64(t.height)
	for leaf != 0 {
		pg, err := t.pg.Acquire(leaf)
		if err != nil {
			return err
		}
		p := pageRef{pg.Data()}
		n := p.ncells()
		type kv struct{ k, v []byte }
		var batch []kv
		next := p.ptrA()
		done := false
		for ; idx < n; idx++ {
			c, err := p.decodeCell(idx)
			if err != nil {
				t.pg.Release(pg)
				return err
			}
			if hi != nil && bytes.Compare(c.key, hi) >= 0 {
				done = true
				break
			}
			k := append([]byte(nil), c.key...)
			var v []byte
			if c.overflow == 0 {
				v = append([]byte(nil), c.val...)
			} else {
				// Defer chain read until after releasing this page to
				// keep pin counts bounded; record a placeholder.
				v = nil
				batch = append(batch, kv{k, nil})
				// Store overflow info alongside via closure-local slices.
				// Simpler: read it now; chains pin one page at a time.
				ovf, total := c.overflow, c.totalLen
				vv, err := t.readOverflow(ovf, total)
				if err != nil {
					t.pg.Release(pg)
					return err
				}
				batch[len(batch)-1].v = vv
				continue
			}
			batch = append(batch, kv{k, v})
		}
		t.pg.Release(pg)
		levels++
		for _, e := range batch {
			if !fn(e.k, e.v) {
				t.addStats(1, levels, 0, 0)
				return nil
			}
		}
		if done {
			break
		}
		leaf = next
		idx = 0
	}
	t.addStats(1, levels, 0, 0)
	return nil
}

// ScanPrefix visits every key beginning with prefix in ascending order.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) error {
	return t.Scan(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if no such key exists (prefix is all 0xFF).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// seekLeaf descends to the leaf that should contain lo (or the first leaf
// when lo is nil) and returns the leaf page and starting cell index.
func (t *Tree) seekLeaf(lo []byte) (uint64, int, error) {
	pno := t.root
	for level := 0; level < t.height-1; level++ {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return 0, 0, err
		}
		p := pageRef{pg.Data()}
		var child uint64
		if lo == nil {
			if p.ncells() > 0 {
				c, err := p.decodeCell(0)
				if err != nil {
					t.pg.Release(pg)
					return 0, 0, err
				}
				child = c.child
			} else {
				child = p.ptrA()
			}
		} else {
			idx, _, err := p.search(lo)
			if err != nil {
				t.pg.Release(pg)
				return 0, 0, err
			}
			if idx < p.ncells() {
				c, err := p.decodeCell(idx)
				if err != nil {
					t.pg.Release(pg)
					return 0, 0, err
				}
				child = c.child
			} else {
				child = p.ptrA()
			}
		}
		t.pg.Release(pg)
		pno = child
	}
	idx := 0
	if lo != nil {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return 0, 0, err
		}
		p := pageRef{pg.Data()}
		idx, _, err = p.search(lo)
		t.pg.Release(pg)
		if err != nil {
			return 0, 0, err
		}
	}
	return pno, idx, nil
}

// First returns the smallest key and its value, or ErrNotFound if empty.
func (t *Tree) First() ([]byte, []byte, error) {
	var k, v []byte
	found := false
	err := t.Scan(nil, nil, func(key, val []byte) bool {
		k, v = key, val
		found = true
		return false
	})
	if err != nil {
		return nil, nil, err
	}
	if !found {
		return nil, nil, ErrNotFound
	}
	return k, v, nil
}

// Last returns the largest key and its value, or ErrNotFound if empty.
func (t *Tree) Last() ([]byte, []byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pno := t.root
	for level := 0; level < t.height-1; level++ {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return nil, nil, err
		}
		p := pageRef{pg.Data()}
		next := p.ptrA()
		t.pg.Release(pg)
		pno = next
	}
	pg, err := t.pg.Acquire(pno)
	if err != nil {
		return nil, nil, err
	}
	p := pageRef{pg.Data()}
	n := p.ncells()
	if n == 0 {
		t.pg.Release(pg)
		return nil, nil, ErrNotFound
	}
	c, err := p.decodeCell(n - 1)
	if err != nil {
		t.pg.Release(pg)
		return nil, nil, err
	}
	k := append([]byte(nil), c.key...)
	var v []byte
	if c.overflow == 0 {
		v = append([]byte(nil), c.val...)
		t.pg.Release(pg)
	} else {
		ovf, total := c.overflow, c.totalLen
		t.pg.Release(pg)
		v, err = t.readOverflow(ovf, total)
		if err != nil {
			return nil, nil, err
		}
	}
	return k, v, nil
}

// Floor returns the greatest key ≤ target and its value, or ErrNotFound
// if every key is greater than target (or the tree is empty).
func (t *Tree) Floor(target []byte) ([]byte, []byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, idx, err := t.seekLeaf(target)
	if err != nil {
		return nil, nil, err
	}
	// idx is the first cell ≥ target within leaf. The floor is that cell
	// if it equals target, else the one before it (possibly in the
	// previous leaf).
	for leaf != 0 {
		pg, err := t.pg.Acquire(leaf)
		if err != nil {
			return nil, nil, err
		}
		p := pageRef{pg.Data()}
		if idx < p.ncells() {
			c, err := p.decodeCell(idx)
			if err != nil {
				t.pg.Release(pg)
				return nil, nil, err
			}
			if compareKeys(c.key, target) == 0 {
				k, v, err := t.materialize(p, idx, pg)
				return k, v, err
			}
		}
		if idx > 0 {
			k, v, err := t.materialize(p, idx-1, pg)
			return k, v, err
		}
		prev := p.ptrB()
		t.pg.Release(pg)
		if prev == 0 {
			return nil, nil, ErrNotFound
		}
		// Step into the previous leaf's last cell.
		ppg, err := t.pg.Acquire(prev)
		if err != nil {
			return nil, nil, err
		}
		pp := pageRef{ppg.Data()}
		n := pp.ncells()
		if n == 0 {
			leaf = pp.ptrB()
			idx = 0
			t.pg.Release(ppg)
			// Continue walking back through (possibly empty) leaves.
			for leaf != 0 {
				epg, err := t.pg.Acquire(leaf)
				if err != nil {
					return nil, nil, err
				}
				ep := pageRef{epg.Data()}
				if ep.ncells() > 0 {
					k, v, err := t.materialize(ep, ep.ncells()-1, epg)
					return k, v, err
				}
				leaf = ep.ptrB()
				t.pg.Release(epg)
			}
			return nil, nil, ErrNotFound
		}
		k, v, err := t.materialize(pp, n-1, ppg)
		return k, v, err
	}
	return nil, nil, ErrNotFound
}

// materialize copies out cell idx of the pinned page, reading overflow
// chains as needed, and releases the pin.
func (t *Tree) materialize(p pageRef, idx int, pg *pager.Page) ([]byte, []byte, error) {
	c, err := p.decodeCell(idx)
	if err != nil {
		t.pg.Release(pg)
		return nil, nil, err
	}
	k := append([]byte(nil), c.key...)
	if c.overflow == 0 {
		v := append([]byte(nil), c.val...)
		t.pg.Release(pg)
		return k, v, nil
	}
	ovf, total := c.overflow, c.totalLen
	t.pg.Release(pg)
	v, err := t.readOverflow(ovf, total)
	if err != nil {
		return nil, nil, err
	}
	return k, v, nil
}

// Cursor streams the keys of [lo, hi) in ascending order without
// materializing the range, one Next call per entry. It is the substrate
// for the index layer's streaming query iterators: an intersection over a
// selective term Seeks a cursor over a broad one instead of scanning it.
//
// A cursor holds no tree lock between calls; each Next/Seek briefly takes
// the tree's read lock. The cursor caches its leaf position and the tree
// generation it was taken under — if the tree mutates between calls the
// cursor transparently re-seeks past the last key it returned, so
// iteration stays correct (never duplicating or going backwards) at the
// cost of one extra descent per interleaved write. A cursor is not safe
// for concurrent use by multiple goroutines.
type Cursor struct {
	t  *Tree
	hi []byte // exclusive upper bound; nil = none

	leaf    uint64 // current leaf page; meaningful only when primed
	idx     int    // next cell index within leaf
	gen     uint64 // tree generation at which (leaf, idx) was taken
	primed  bool   // position established
	done    bool   // iteration exhausted
	resumed bool   // position re-derived from last; skip keys <= last

	target []byte // pending seek key (first key >= target), nil = first
	last   []byte // last key returned, for repositioning after writes
}

// NewCursor returns a cursor over [lo, hi). A nil lo starts at the first
// key; a nil hi iterates to the end.
func (t *Tree) NewCursor(lo, hi []byte) *Cursor {
	c := &Cursor{t: t}
	if lo != nil {
		c.target = append([]byte(nil), lo...)
	}
	if hi != nil {
		c.hi = append([]byte(nil), hi...)
	}
	return c
}

// NewPrefixCursor returns a cursor over every key beginning with prefix.
func (t *Tree) NewPrefixCursor(prefix []byte) *Cursor {
	return t.NewCursor(prefix, prefixEnd(prefix))
}

// Seek repositions the cursor so the following Next returns the first key
// >= key (within the cursor's upper bound). Seeking backwards is allowed.
func (c *Cursor) Seek(key []byte) {
	c.target = append(c.target[:0], key...)
	c.primed = false
	c.done = false
	c.resumed = false
	c.last = nil
}

// Next returns the next key/value in order, or ok=false when the range is
// exhausted. The returned slices are copies and may be retained.
func (c *Cursor) Next() ([]byte, []byte, bool, error) {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	if c.done {
		return nil, nil, false, nil
	}
	if !c.primed || c.gen != c.t.gen {
		start := c.target
		if c.last != nil {
			// Re-derive the position from the last key we handed out.
			start = c.last
			c.resumed = true
		}
		leaf, idx, err := c.t.seekLeaf(start)
		if err != nil {
			return nil, nil, false, err
		}
		c.leaf, c.idx, c.gen, c.primed = leaf, idx, c.t.gen, true
	}
	for c.leaf != 0 {
		pg, err := c.t.pg.Acquire(c.leaf)
		if err != nil {
			return nil, nil, false, err
		}
		p := pageRef{pg.Data()}
		n := p.ncells()
		for ; c.idx < n; c.idx++ {
			cell, err := p.decodeCell(c.idx)
			if err != nil {
				c.t.pg.Release(pg)
				return nil, nil, false, err
			}
			if c.hi != nil && bytes.Compare(cell.key, c.hi) >= 0 {
				c.t.pg.Release(pg)
				c.done = true
				return nil, nil, false, nil
			}
			if c.resumed {
				if bytes.Compare(cell.key, c.last) <= 0 {
					continue // already returned before the re-seek
				}
				c.resumed = false
			}
			k := append([]byte(nil), cell.key...)
			c.idx++
			c.last = k
			if cell.overflow == 0 {
				v := append([]byte(nil), cell.val...)
				c.t.pg.Release(pg)
				return k, v, true, nil
			}
			ovf, total := cell.overflow, cell.totalLen
			c.t.pg.Release(pg)
			v, err := c.t.readOverflow(ovf, total)
			if err != nil {
				return nil, nil, false, err
			}
			return k, v, true, nil
		}
		next := p.ptrA()
		c.t.pg.Release(pg)
		c.leaf, c.idx = next, 0
	}
	c.done = true
	return nil, nil, false, nil
}

// Count returns the number of keys in [lo, hi).
func (t *Tree) Count(lo, hi []byte) (uint64, error) {
	var n uint64
	err := t.Scan(lo, hi, func(_, _ []byte) bool {
		n++
		return true
	})
	return n, err
}
