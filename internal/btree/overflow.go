package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
	"repro/internal/redo"
)

// Overflow page layout: common header byte 0 = pageOverflow, bytes [2:4]
// hold the used-byte count, [8:16] the next page in the chain (0 = end),
// and payload starts at ovfDataOff.
const ovfDataOff = 16

func ovfCapacity(blockSize int) int { return blockSize - ovfDataOff }

// writeOverflow spills val into a chain of overflow pages, returning the
// first page number. Overflow pages are fresh and single-writer, so
// their redo records are plain byte ranges covering exactly the header
// and content written.
func (t *Tree) writeOverflow(op *pager.Op, val []byte) (uint64, error) {
	if len(val) == 0 {
		return 0, fmt.Errorf("btree: empty overflow value")
	}
	capacity := ovfCapacity(t.pg.BlockSize())
	var first, prev uint64
	for off := 0; off < len(val); off += capacity {
		end := off + capacity
		if end > len(val) {
			end = len(val)
		}
		pno, err := t.alloc.AllocPage()
		if err != nil {
			if first != 0 {
				_ = t.freeOverflow(first) // release partial chain
			}
			return 0, err
		}
		pg, err := t.pg.AcquireZero(pno)
		if err != nil {
			return 0, err
		}
		d := pg.Data()
		d[offType] = pageOverflow
		binary.LittleEndian.PutUint16(d[2:], uint16(end-off))
		copy(d[ovfDataOff:], val[off:end])
		t.pg.MarkDirtyRec(pg, op, redo.KindRange,
			redo.EncodeRange(0, append([]byte(nil), d[:ovfDataOff+(end-off)]...)))
		t.pg.Release(pg)
		if prev != 0 {
			ppg, err := t.pg.Acquire(prev)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(ppg.Data()[offPtrA:], pno)
			t.pg.MarkDirtyRec(ppg, op, redo.KindRange, redo.EncodeRange(offPtrA, u64b(pno)))
			t.pg.Release(ppg)
		} else {
			first = pno
		}
		prev = pno
	}
	return first, nil
}

// readOverflow reassembles a value of totalLen bytes from the chain
// starting at pno.
func (t *Tree) readOverflow(pno uint64, totalLen uint64) ([]byte, error) {
	out := make([]byte, 0, totalLen)
	for pno != 0 {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if d[offType] != pageOverflow {
			t.pg.Release(pg)
			return nil, fmt.Errorf("%w: page %d not overflow", ErrCorrupt, pno)
		}
		used := int(binary.LittleEndian.Uint16(d[2:]))
		if used > len(d)-ovfDataOff {
			t.pg.Release(pg)
			return nil, fmt.Errorf("%w: overflow used %d too large", ErrCorrupt, used)
		}
		out = append(out, d[ovfDataOff:ovfDataOff+used]...)
		next := binary.LittleEndian.Uint64(d[offPtrA:])
		t.pg.Release(pg)
		pno = next
	}
	if uint64(len(out)) != totalLen {
		return nil, fmt.Errorf("%w: overflow chain length %d, want %d", ErrCorrupt, len(out), totalLen)
	}
	return out, nil
}

// freeOverflow releases the chain starting at pno.
func (t *Tree) freeOverflow(pno uint64) error {
	for pno != 0 {
		pg, err := t.pg.Acquire(pno)
		if err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(pg.Data()[offPtrA:])
		t.pg.Release(pg)
		if err := t.freePage(pno); err != nil {
			return err
		}
		pno = next
	}
	return nil
}
