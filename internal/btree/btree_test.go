package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/buddy"
	"repro/internal/pager"
)

// testEnv bundles a device, pager, and buddy-backed page allocator.
type testEnv struct {
	dev   *blockdev.MemDevice
	pg    *pager.Pager
	alloc *buddyPages
}

// buddyPages adapts the buddy allocator to single-page allocation.
type buddyPages struct {
	b *buddy.Allocator
}

func (a *buddyPages) AllocPage() (uint64, error) { return a.b.Alloc(1) }
func (a *buddyPages) FreePage(no uint64) error   { return a.b.Free(no, 1) }

func newEnv(t *testing.T, blocks uint64, cacheCap int) *testEnv {
	t.Helper()
	dev := blockdev.NewMem(blocks, blockdev.DefaultBlockSize)
	pg := pager.New(dev, cacheCap, true)
	return &testEnv{dev: dev, pg: pg, alloc: &buddyPages{buddy.New(1, blocks-1)}}
}

func newTree(t *testing.T) (*Tree, *testEnv) {
	t.Helper()
	env := newEnv(t, 4096, 256)
	tr, err := Create(env.pg, env.alloc)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tr, env
}

func mustPut(t *testing.T, tr *Tree, k, v string) {
	t.Helper()
	if err := tr.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func mustCheck(t *testing.T, tr *Tree) *CheckResult {
	t.Helper()
	res, err := tr.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t)
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty = %v, want ErrNotFound", err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree len=%d height=%d, want 0/1", tr.Len(), tr.Height())
	}
	mustCheck(t, tr)
}

func TestPutGetSingle(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "hello", "world")
	v, err := tr.Get([]byte("hello"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "world" {
		t.Errorf("Get = %q, want %q", v, "world")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestPutReplace(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "k", "v1")
	mustPut(t, tr, "k", "v2")
	v, err := tr.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v2" {
		t.Errorf("Get = %q, want v2", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
}

func TestHas(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "a", "1")
	if ok, _ := tr.Has([]byte("a")); !ok {
		t.Error("Has(a) = false")
	}
	if ok, _ := tr.Has([]byte("b")); ok {
		t.Error("Has(b) = true")
	}
}

func TestEmptyValueAndEmptyKey(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "", "meta") // the paper's NULL-key metadata slot
	mustPut(t, tr, "k", "")
	v, err := tr.Get([]byte(""))
	if err != nil || string(v) != "meta" {
		t.Errorf("Get(empty key) = %q, %v", v, err)
	}
	v, err = tr.Get([]byte("k"))
	if err != nil || len(v) != 0 {
		t.Errorf("Get(k) = %q, %v; want empty", v, err)
	}
}

func TestKeyTooBig(t *testing.T) {
	tr, _ := newTree(t)
	big := make([]byte, tr.MaxKeyLen()+1)
	if err := tr.Put(big, []byte("v")); !errors.Is(err, ErrKeyTooBig) {
		t.Errorf("Put(oversized key) = %v, want ErrKeyTooBig", err)
	}
}

func TestSplitsManyKeys(t *testing.T) {
	tr, _ := newTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		mustPut(t, tr, fmt.Sprintf("key-%06d", i), fmt.Sprintf("value-%d", i))
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d after %d inserts, expected splits", tr.Height(), n)
	}
	if tr.Len() != n {
		t.Errorf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		v, err := tr.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			t.Errorf("Get(%d) = %q", i, v)
		}
	}
	res := mustCheck(t, tr)
	if res.Keys != n {
		t.Errorf("check found %d keys, want %d", res.Keys, n)
	}
	if tr.Stats().Splits == 0 {
		t.Error("no splits recorded")
	}
}

func TestReverseInsertionOrder(t *testing.T) {
	tr, _ := newTree(t)
	const n = 1000
	for i := n - 1; i >= 0; i-- {
		mustPut(t, tr, fmt.Sprintf("key-%06d", i), "v")
	}
	mustCheck(t, tr)
	if tr.Len() != n {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDeleteBasic(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "a", "1")
	mustPut(t, tr, "b", "2")
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tr.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key still present")
	}
	if v, err := tr.Get([]byte("b")); err != nil || string(v) != "2" {
		t.Errorf("survivor Get = %q, %v", v, err)
	}
	if err := tr.Delete([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(missing) = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestDeleteAllTriggersMergesAndCollapse(t *testing.T) {
	tr, _ := newTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		mustPut(t, tr, fmt.Sprintf("key-%06d", i), fmt.Sprintf("some-longer-value-%d", i))
	}
	grown := tr.Height()
	if grown < 2 {
		t.Fatal("tree did not grow")
	}
	for i := 0; i < n; i++ {
		if err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if tr.Stats().Merges == 0 {
		t.Error("no merges recorded")
	}
	if tr.Height() >= grown {
		t.Errorf("height %d did not shrink from %d", tr.Height(), grown)
	}
	mustCheck(t, tr)
}

func TestDeleteReleasesPagesForReuse(t *testing.T) {
	env := newEnv(t, 4096, 256)
	tr, err := Create(env.pg, env.alloc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Delete([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	freeAfter := env.alloc.b.FreeBlocks()
	used := env.alloc.b.Size() - freeAfter
	// All that should remain is the header, the (empty) root, and any
	// unmerged stragglers; lazy rebalancing tolerates a few.
	if used > 20 {
		t.Errorf("%d pages still allocated after full delete; merge-back broken", used)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	tr, _ := newTree(t)
	ref := make(map[string]string)
	rng := rand.New(rand.NewPCG(7, 11))
	keyFor := func() string { return fmt.Sprintf("key-%05d", rng.IntN(5000)) }
	for op := 0; op < 20000; op++ {
		switch rng.IntN(10) {
		case 0, 1, 2, 3, 4, 5: // put
			k := keyFor()
			v := fmt.Sprintf("val-%d", op)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			ref[k] = v
		case 6, 7: // delete
			k := keyFor()
			err := tr.Delete([]byte(k))
			_, inRef := ref[k]
			if inRef && err != nil {
				t.Fatalf("Delete(%q) = %v, want success", k, err)
			}
			if !inRef && !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(%q) = %v, want ErrNotFound", k, err)
			}
			delete(ref, k)
		default: // get
			k := keyFor()
			v, err := tr.Get([]byte(k))
			want, inRef := ref[k]
			if inRef {
				if err != nil || string(v) != want {
					t.Fatalf("Get(%q) = %q, %v; want %q", k, v, err, want)
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(%q) = %v, want ErrNotFound", k, err)
			}
		}
	}
	if tr.Len() != uint64(len(ref)) {
		t.Errorf("Len = %d, ref has %d", tr.Len(), len(ref))
	}
	res := mustCheck(t, tr)
	if res.Keys != uint64(len(ref)) {
		t.Errorf("check Keys = %d, want %d", res.Keys, len(ref))
	}
	// Full scan must equal sorted reference.
	var keys []string
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("scan yielded extra key %q", k)
		}
		if string(k) != keys[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, k, keys[i])
		}
		if string(v) != ref[keys[i]] {
			t.Fatalf("scan[%d] value = %q, want %q", i, v, ref[keys[i]])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Errorf("scan yielded %d keys, want %d", i, len(keys))
	}
}

func TestVariableSizeKeysAndValues(t *testing.T) {
	tr, _ := newTree(t)
	rng := rand.New(rand.NewPCG(3, 9))
	ref := make(map[string]string)
	for i := 0; i < 500; i++ {
		klen := 1 + rng.IntN(tr.MaxKeyLen()-1)
		vlen := rng.IntN(3000)
		k := make([]byte, klen)
		v := make([]byte, vlen)
		for j := range k {
			k[j] = byte('a' + rng.IntN(26))
		}
		for j := range v {
			v[j] = byte(rng.IntN(256))
		}
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put len(k)=%d len(v)=%d: %v", klen, vlen, err)
		}
		ref[string(k)] = string(v)
	}
	for k, want := range ref {
		v, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(v) != want {
			t.Fatalf("value mismatch for key len %d", len(k))
		}
	}
	mustCheck(t, tr)
}

func TestOverflowValues(t *testing.T) {
	tr, env := newTree(t)
	big := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB
	if err := tr.Put([]byte("big"), big); err != nil {
		t.Fatalf("Put big: %v", err)
	}
	v, err := tr.Get([]byte("big"))
	if err != nil {
		t.Fatalf("Get big: %v", err)
	}
	if !bytes.Equal(v, big) {
		t.Fatal("big value corrupted")
	}
	mustCheck(t, tr)

	// Replacing must free the old chain.
	before := env.alloc.b.FreeBlocks()
	if err := tr.Put([]byte("big"), []byte("small now")); err != nil {
		t.Fatal(err)
	}
	after := env.alloc.b.FreeBlocks()
	if after <= before {
		t.Errorf("overflow chain not freed on replace: free %d -> %d", before, after)
	}
	v, err = tr.Get([]byte("big"))
	if err != nil || string(v) != "small now" {
		t.Errorf("Get after replace = %q, %v", v, err)
	}

	// Deleting an overflowed value must free its chain.
	if err := tr.Put([]byte("big2"), big); err != nil {
		t.Fatal(err)
	}
	before = env.alloc.b.FreeBlocks()
	if err := tr.Delete([]byte("big2")); err != nil {
		t.Fatal(err)
	}
	if env.alloc.b.FreeBlocks() <= before {
		t.Error("overflow chain not freed on delete")
	}
	mustCheck(t, tr)
}

func TestScanRange(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 100; i++ {
		mustPut(t, tr, fmt.Sprintf("k%03d", i), fmt.Sprintf("%d", i))
	}
	var got []string
	err := tr.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Errorf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	err = tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if err != nil || count != 5 {
		t.Errorf("early-stop scan count = %d, err %v", count, err)
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := newTree(t)
	mustPut(t, tr, "app/one", "1")
	mustPut(t, tr, "app/two", "2")
	mustPut(t, tr, "apple", "3")
	mustPut(t, tr, "b", "4")
	var got []string
	if err := tr.ScanPrefix([]byte("app/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "app/one" || got[1] != "app/two" {
		t.Errorf("prefix scan = %v", got)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in   string
		want []byte
	}{
		{"abc", []byte("abd")},
		{"a\xff", []byte("b")},
	}
	for _, c := range cases {
		if got := prefixEnd([]byte(c.in)); !bytes.Equal(got, c.want) {
			t.Errorf("prefixEnd(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := prefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("prefixEnd(all-FF) = %v, want nil", got)
	}
}

func TestFirstLast(t *testing.T) {
	tr, _ := newTree(t)
	if _, _, err := tr.First(); !errors.Is(err, ErrNotFound) {
		t.Errorf("First on empty = %v", err)
	}
	if _, _, err := tr.Last(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Last on empty = %v", err)
	}
	for i := 0; i < 500; i++ {
		mustPut(t, tr, fmt.Sprintf("k%04d", i), "v")
	}
	k, _, err := tr.First()
	if err != nil || string(k) != "k0000" {
		t.Errorf("First = %q, %v", k, err)
	}
	k, _, err = tr.Last()
	if err != nil || string(k) != "k0499" {
		t.Errorf("Last = %q, %v", k, err)
	}
}

func TestCount(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 50; i++ {
		mustPut(t, tr, fmt.Sprintf("k%03d", i), "v")
	}
	n, err := tr.Count([]byte("k010"), []byte("k030"))
	if err != nil || n != 20 {
		t.Errorf("Count = %d, %v; want 20", n, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	env := newEnv(t, 4096, 64)
	tr, err := Create(env.pg, env.alloc)
	if err != nil {
		t.Fatal(err)
	}
	hdr := tr.HeaderPage()
	for i := 0; i < 800; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.pg.Sync(); err != nil {
		t.Fatal(err)
	}
	// Reopen through a fresh pager over the same device.
	pg2 := pager.New(env.dev, 64, true)
	tr2, err := Open(pg2, env.alloc, hdr)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != 800 {
		t.Errorf("reopened Len = %d, want 800", tr2.Len())
	}
	for i := 0; i < 800; i += 37 {
		v, err := tr2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, v, err)
		}
	}
	if _, err := tr2.Check(); err != nil {
		t.Fatalf("reopened Check: %v", err)
	}
}

func TestOpenRejectsNonHeader(t *testing.T) {
	env := newEnv(t, 128, 16)
	tr, err := Create(env.pg, env.alloc)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	if _, err := Open(env.pg, env.alloc, 99); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open(non-header) = %v, want ErrCorrupt", err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 1000; i++ {
		mustPut(t, tr, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%04d", (w*131+i)%1000)
				v, err := tr.Get([]byte(k))
				if err != nil {
					t.Errorf("Get(%s): %v", k, err)
					return
				}
				if len(v) == 0 {
					t.Errorf("Get(%s) empty", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentMixedOps(t *testing.T) {
	tr, _ := newTree(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := tr.Put(k, []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := tr.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if i%3 == 0 {
					if err := tr.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
}

func TestTraversalStats(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 2000; i++ {
		mustPut(t, tr, fmt.Sprintf("k%05d", i), "v")
	}
	base := tr.Stats()
	if _, err := tr.Get([]byte("k01000")); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Descents != base.Descents+1 {
		t.Errorf("Descents delta = %d, want 1", s.Descents-base.Descents)
	}
	levels := s.LevelsTouched - base.LevelsTouched
	if levels != int64(tr.Height()) {
		t.Errorf("LevelsTouched delta = %d, want height %d", levels, tr.Height())
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	tr, env := newTree(t)
	for i := 0; i < 500; i++ {
		mustPut(t, tr, fmt.Sprintf("k%04d", i), "v")
	}
	if err := env.pg.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a leaf: find a leaf page via the check walk, then scribble.
	res := mustCheck(t, tr)
	if len(res.AllPages) < 3 {
		t.Fatal("tree too small for corruption test")
	}
	// Scribble over every non-header page until Check complains.
	pg2 := pager.New(env.dev, 64, true)
	tr2, err := Open(pg2, env.alloc, tr.HeaderPage())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.DefaultBlockSize)
	target := res.AllPages[len(res.AllPages)-1]
	if err := env.dev.ReadBlock(target, buf); err != nil {
		t.Fatal(err)
	}
	for i := hdrSize; i < len(buf); i++ {
		buf[i] ^= 0xA5
	}
	if err := env.dev.WriteBlock(target, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Check(); err == nil {
		t.Error("Check accepted a corrupted page")
	}
}

func TestPutManyMatchesPut(t *testing.T) {
	many, _ := newTree(t)
	one, _ := newTree(t)
	rng := rand.New(rand.NewPCG(42, 7))
	const n = 500
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", rng.IntN(n*4)))
		vals[i] = []byte(fmt.Sprintf("val-%d", i))
	}
	if err := many.PutMany(keys, vals); err != nil {
		t.Fatalf("PutMany: %v", err)
	}
	for i := range keys {
		if err := one.Put(keys[i], vals[i]); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if many.Len() != one.Len() {
		t.Fatalf("PutMany len %d != Put len %d", many.Len(), one.Len())
	}
	// Duplicate keys must resolve last-wins in input order, same as
	// sequential Put.
	for i := range keys {
		want, err := one.Get(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := many.Get(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %q: PutMany value %q, Put value %q", keys[i], got, want)
		}
	}
	if _, err := many.Check(); err != nil {
		t.Fatalf("invariants after PutMany: %v", err)
	}
}

func TestPutManyEmptyAndMismatch(t *testing.T) {
	tr, _ := newTree(t)
	if err := tr.PutMany(nil, nil); err != nil {
		t.Errorf("empty PutMany: %v", err)
	}
	if err := tr.PutMany([][]byte{[]byte("a")}, nil); err == nil {
		t.Error("mismatched lengths did not error")
	}
}
