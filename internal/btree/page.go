// Package btree implements a page-based B+tree over the pager, substituting
// for the Berkeley DB btrees the paper layers its OSD and index stores on.
//
// Features: variable-length keys and values, overflow chains for large
// values, ascending/descending cursors, range scans, and lazy (merge-only)
// rebalancing on delete. Each tree is rooted at a header page so trees can
// be persisted and reopened by page number alone.
//
// On-page layout (little-endian):
//
//	common header (24 bytes):
//	  [0]    type: 1=leaf, 2=internal, 3=overflow, 4=tree header
//	  [1]    flags (reserved)
//	  [2:4]  ncells
//	  [4:6]  cellStart — lowest byte offset used by cell content
//	  [6:8]  fragBytes — dead bytes recoverable by compaction
//	  [8:16] ptrA — leaf: next leaf; internal: rightmost child
//	  [16:24] ptrB — leaf: prev leaf
//	  [24:24+2n] slot array (cell content offsets, sorted by key)
//	cell content grows downward from the end of the page.
//
// Leaf cell:     klen uvarint | key | vtag(0=inline,1=overflow) |
//
//	inline: vlen uvarint, value
//	overflow: vlen uvarint (total), first overflow page uint64
//
// Internal cell: klen uvarint | key | child uint64
//
// Separator convention: an internal cell (k, c) means subtree c holds keys
// ≤ k; keys greater than the last cell key live under ptrA (rightmost
// child). Separators are upper bounds and need not be present in the
// subtree, which lets delete use merge-only rebalancing with no separator
// rewriting.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page type bytes.
const (
	pageLeaf     = 1
	pageInternal = 2
	pageOverflow = 3
	pageHeader   = 4
)

// Header field offsets.
const (
	offType      = 0
	offFlags     = 1
	offNCells    = 2
	offCellStart = 4
	offFrag      = 6
	offPtrA      = 8
	offPtrB      = 16
	hdrSize      = 24
)

// Tree errors.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrKeyTooBig = errors.New("btree: key too large")
	ErrCorrupt   = errors.New("btree: corrupt page")
)

type pageRef struct {
	data []byte
}

func (p pageRef) typ() byte          { return p.data[offType] }
func (p pageRef) setTyp(t byte)      { p.data[offType] = t }
func (p pageRef) ncells() int        { return int(binary.LittleEndian.Uint16(p.data[offNCells:])) }
func (p pageRef) setNCells(n int)    { binary.LittleEndian.PutUint16(p.data[offNCells:], uint16(n)) }
func (p pageRef) cellStart() int     { return int(binary.LittleEndian.Uint16(p.data[offCellStart:])) }
func (p pageRef) setCellStart(v int) { binary.LittleEndian.PutUint16(p.data[offCellStart:], uint16(v)) }
func (p pageRef) frag() int          { return int(binary.LittleEndian.Uint16(p.data[offFrag:])) }
func (p pageRef) setFrag(v int)      { binary.LittleEndian.PutUint16(p.data[offFrag:], uint16(v)) }
func (p pageRef) ptrA() uint64       { return binary.LittleEndian.Uint64(p.data[offPtrA:]) }
func (p pageRef) setPtrA(v uint64)   { binary.LittleEndian.PutUint64(p.data[offPtrA:], v) }
func (p pageRef) ptrB() uint64       { return binary.LittleEndian.Uint64(p.data[offPtrB:]) }
func (p pageRef) setPtrB(v uint64)   { binary.LittleEndian.PutUint64(p.data[offPtrB:], v) }

func (p pageRef) slot(i int) int {
	return int(binary.LittleEndian.Uint16(p.data[hdrSize+2*i:]))
}

func (p pageRef) setSlot(i, off int) {
	binary.LittleEndian.PutUint16(p.data[hdrSize+2*i:], uint16(off))
}

// initPage formats a page as an empty node of the given type.
func initPage(data []byte, typ byte) pageRef {
	for i := range data[:hdrSize] {
		data[i] = 0
	}
	p := pageRef{data}
	p.setTyp(typ)
	p.setCellStart(len(data))
	return p
}

// freeSpace returns the contiguous bytes available between the slot array
// and the cell content area.
func (p pageRef) freeSpace() int {
	return p.cellStart() - (hdrSize + 2*p.ncells())
}

// usedBytes returns bytes consumed by live cells plus slots.
func (p pageRef) usedBytes() int {
	return (len(p.data) - p.cellStart() - p.frag()) + 2*p.ncells()
}

// cell is the decoded form of a leaf or internal cell.
type cell struct {
	key []byte
	// Leaf fields.
	val      []byte // inline value (nil when overflowed)
	overflow uint64 // first overflow page (0 = inline)
	totalLen uint64 // total value length (inline or overflowed)
	// Internal field.
	child uint64
}

// decodeCell parses the cell at slot i.
func (p pageRef) decodeCell(i int) (cell, error) {
	off := p.slot(i)
	if off < hdrSize || off >= len(p.data) {
		return cell{}, fmt.Errorf("%w: slot %d offset %d", ErrCorrupt, i, off)
	}
	b := p.data[off:]
	klen, n := binary.Uvarint(b)
	if n <= 0 || int(klen) > len(b)-n {
		return cell{}, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	b = b[n:]
	key := b[:klen]
	b = b[klen:]
	var c cell
	c.key = key
	switch p.typ() {
	case pageLeaf:
		if len(b) < 1 {
			return cell{}, fmt.Errorf("%w: truncated leaf cell", ErrCorrupt)
		}
		vtag := b[0]
		b = b[1:]
		vlen, n := binary.Uvarint(b)
		if n <= 0 {
			return cell{}, fmt.Errorf("%w: bad value length", ErrCorrupt)
		}
		b = b[n:]
		c.totalLen = vlen
		if vtag == 0 {
			if int(vlen) > len(b) {
				return cell{}, fmt.Errorf("%w: inline value overruns page", ErrCorrupt)
			}
			c.val = b[:vlen]
		} else {
			if len(b) < 8 {
				return cell{}, fmt.Errorf("%w: truncated overflow pointer", ErrCorrupt)
			}
			c.overflow = binary.LittleEndian.Uint64(b)
		}
	case pageInternal:
		if len(b) < 8 {
			return cell{}, fmt.Errorf("%w: truncated child pointer", ErrCorrupt)
		}
		c.child = binary.LittleEndian.Uint64(b)
	default:
		return cell{}, fmt.Errorf("%w: decodeCell on page type %d", ErrCorrupt, p.typ())
	}
	return c, nil
}

// encodedLeafCellSize returns the on-page size of a leaf cell for a key and
// either an inline value of vlen bytes or an overflow pointer.
func encodedLeafCellSize(klen, vlen int, inline bool) int {
	sz := uvarintLen(uint64(klen)) + klen + 1
	if inline {
		sz += uvarintLen(uint64(vlen)) + vlen
	} else {
		sz += uvarintLen(uint64(vlen)) + 8
	}
	return sz
}

func encodedInternalCellSize(klen int) int {
	return uvarintLen(uint64(klen)) + klen + 8
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encodeLeafCell appends the encoded cell to dst.
func encodeLeafCell(dst []byte, key, val []byte, totalLen uint64, overflow uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, key...)
	if overflow == 0 {
		dst = append(dst, 0)
		n = binary.PutUvarint(tmp[:], uint64(len(val)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, val...)
	} else {
		dst = append(dst, 1)
		n = binary.PutUvarint(tmp[:], totalLen)
		dst = append(dst, tmp[:n]...)
		var pb [8]byte
		binary.LittleEndian.PutUint64(pb[:], overflow)
		dst = append(dst, pb[:]...)
	}
	return dst
}

func encodeInternalCell(dst []byte, key []byte, child uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, key...)
	var pb [8]byte
	binary.LittleEndian.PutUint64(pb[:], child)
	dst = append(dst, pb[:]...)
	return dst
}

// insertRaw places an encoded cell at slot index i, compacting first if the
// contiguous free space is insufficient but fragmentation would cover it.
// Returns false if the cell cannot fit even after compaction.
func (p pageRef) insertRaw(i int, enc []byte) bool {
	need := len(enc) + 2
	if p.freeSpace() < need {
		if p.freeSpace()+p.frag() < need {
			return false
		}
		p.compact()
		if p.freeSpace() < need {
			return false
		}
	}
	off := p.cellStart() - len(enc)
	copy(p.data[off:], enc)
	p.setCellStart(off)
	n := p.ncells()
	// Shift slots [i, n) right by one.
	copy(p.data[hdrSize+2*(i+1):hdrSize+2*(n+1)], p.data[hdrSize+2*i:hdrSize+2*n])
	p.setSlot(i, off)
	p.setNCells(n + 1)
	return true
}

// removeCell deletes slot i, accounting its bytes as fragmentation.
func (p pageRef) removeCell(i int) {
	off := p.slot(i)
	size := p.cellLenAt(off)
	n := p.ncells()
	copy(p.data[hdrSize+2*i:hdrSize+2*(n-1)], p.data[hdrSize+2*(i+1):hdrSize+2*n])
	p.setNCells(n - 1)
	if off == p.cellStart() {
		p.setCellStart(off + size)
	} else {
		p.setFrag(p.frag() + size)
	}
}

// cellLenAt computes the encoded length of the cell starting at off.
func (p pageRef) cellLenAt(off int) int {
	b := p.data[off:]
	klen, n := binary.Uvarint(b)
	sz := n + int(klen)
	b = b[sz:]
	switch p.typ() {
	case pageLeaf:
		vtag := b[0]
		b = b[1:]
		sz++
		vlen, n := binary.Uvarint(b)
		sz += n
		if vtag == 0 {
			sz += int(vlen)
		} else {
			sz += 8
		}
	case pageInternal:
		sz += 8
	}
	return sz
}

// compact rewrites all cells densely, zeroing fragmentation.
func (p pageRef) compact() {
	n := p.ncells()
	type ent struct {
		slot int
		raw  []byte
	}
	ents := make([]ent, n)
	for i := 0; i < n; i++ {
		off := p.slot(i)
		sz := p.cellLenAt(off)
		raw := make([]byte, sz)
		copy(raw, p.data[off:off+sz])
		ents[i] = ent{i, raw}
	}
	pos := len(p.data)
	for i := 0; i < n; i++ {
		pos -= len(ents[i].raw)
		copy(p.data[pos:], ents[i].raw)
		p.setSlot(i, pos)
	}
	p.setCellStart(pos)
	p.setFrag(0)
}

// search returns the index of the first cell with key >= target, and
// whether an exact match was found at that index.
func (p pageRef) search(target []byte) (int, bool, error) {
	lo, hi := 0, p.ncells()
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := p.decodeCell(mid)
		if err != nil {
			return 0, false, err
		}
		switch cmp := compareKeys(c.key, target); {
		case cmp < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	if lo < p.ncells() {
		c, err := p.decodeCell(lo)
		if err != nil {
			return 0, false, err
		}
		return lo, compareKeys(c.key, target) == 0, nil
	}
	return lo, false, nil
}

// compareKeys is bytes.Compare, isolated so key ordering is explicit.
func compareKeys(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	default:
		return 0
	}
}
