package btree

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCursorFullScan(t *testing.T) {
	tr, _ := newTree(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil, nil)
	got := 0
	var prev []byte
	for {
		k, v, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		if want := fmt.Sprintf("v%d", got); string(v) != want {
			t.Fatalf("value for %q = %q, want %q", k, v, want)
		}
		prev = append(prev[:0], k...)
		got++
	}
	if got != n {
		t.Fatalf("cursor visited %d keys, want %d", got, n)
	}
	// Exhausted cursors stay exhausted.
	if _, _, ok, _ := c.Next(); ok {
		t.Fatal("Next after exhaustion returned ok")
	}
}

func TestCursorBounds(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor([]byte("k0010"), []byte("k0020"))
	var keys []string
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		keys = append(keys, string(k))
	}
	if len(keys) != 10 || keys[0] != "k0010" || keys[9] != "k0019" {
		t.Fatalf("bounded scan = %v", keys)
	}
}

func TestCursorSeek(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 100; i += 2 { // even keys only
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil, nil)
	// Seek to a key that is absent: lands on the next present key.
	c.Seek([]byte("k0013"))
	k, _, ok, err := c.Next()
	if err != nil || !ok || string(k) != "k0014" {
		t.Fatalf("Seek(k0013) -> %q, %v, %v", k, ok, err)
	}
	// Forward seek from an established position.
	c.Seek([]byte("k0050"))
	k, _, ok, err = c.Next()
	if err != nil || !ok || string(k) != "k0050" {
		t.Fatalf("Seek(k0050) -> %q, %v, %v", k, ok, err)
	}
	// Backward seek is allowed.
	c.Seek([]byte("k0000"))
	k, _, ok, err = c.Next()
	if err != nil || !ok || string(k) != "k0000" {
		t.Fatalf("Seek(k0000) -> %q, %v, %v", k, ok, err)
	}
	// Seek past the end exhausts.
	c.Seek([]byte("k9999"))
	if _, _, ok, _ := c.Next(); ok {
		t.Fatal("Seek past end returned ok")
	}
}

// TestCursorSurvivesMutation interleaves writes with iteration: the cursor
// must re-derive its position and keep emitting keys in order without
// duplicates, including keys inserted ahead of it.
func TestCursorSurvivesMutation(t *testing.T) {
	tr, _ := newTree(t)
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", 2*i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil, nil)
	seen := map[string]bool{}
	var prev []byte
	step := 0
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[string(k)] {
			t.Fatalf("duplicate key %q", k)
		}
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		seen[string(k)] = true
		prev = append(prev[:0], k...)
		// Mutate mid-iteration: insert odd keys ahead and delete some
		// even keys behind the cursor, forcing splits and merges.
		if step%3 == 0 {
			_ = tr.Put([]byte(fmt.Sprintf("k%04d", 2*step+101)), nil)
			_ = tr.Delete([]byte(fmt.Sprintf("k%04d", 2*(step/2))))
		}
		step++
	}
	// Every even key the loop did not delete must have been seen up to
	// where iteration passed; spot-check the tail region is intact.
	if !seen["k0398"] {
		t.Fatal("cursor lost the tail of the keyspace after mutations")
	}
}

func TestCursorEmptyTree(t *testing.T) {
	tr, _ := newTree(t)
	c := tr.NewCursor(nil, nil)
	if _, _, ok, err := c.Next(); ok || err != nil {
		t.Fatalf("empty tree Next = %v, %v", ok, err)
	}
}
