// Physiological redo for btree pages: typed per-page operations that
// recovery re-executes instead of replaying whole page images.
//
// Why typed ops instead of byte ranges: btree pages are shared between
// concurrent transactions (the object table, the index trees, the reverse
// index), and an insert physically shifts the slot array and header
// fields, so any byte range wide enough to cover one writer's edit also
// covers bytes a neighbour wrote. Re-executing "put this cell" against
// whatever committed cells the page holds at replay time is position-
// independent — a committed record can never smuggle in, or depend on,
// a neighbour's uncommitted bytes.
//
// Structure modifications (splits, merges, root changes) are emitted as
// *system transactions*: auto-committed the moment they happen,
// regardless of the enclosing operation's fate. A committed neighbour's
// records may target pages a split created, so the split must be redone
// even when the splitting operation's own transaction never committed.
// System-transaction records are equally typed: replaying a split
// re-partitions whatever committed cells the page holds around the
// recorded separator, so an always-redone split still carries nobody's
// cell bytes.
//
// Op payloads (first byte is the opcode):
//
//	opInit          typ u8
//	opPut           cell-encoding (leaf or internal; replace semantics)
//	opDel           key
//	opRedirect      klen uvarint | key | newChild u64   (internal cell)
//	opSplitLeaf     right u64 | klen uvarint | sep      (cells > sep move)
//	opSplitInternal right u64 | newChild u64 | klen uvarint | newKey
//	opNewRoot       left u64 | right u64 | klen uvarint | sep
//	opMerge         left u64 | right u64                (page = parent)
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Btree redo opcodes (payload byte 0 of a redo.KindBtreeOp record).
const (
	opInit          = 1
	opPut           = 2
	opDel           = 3
	opRedirect      = 4
	opSplitLeaf     = 5
	opSplitInternal = 6
	opNewRoot       = 7
	opMerge         = 8
)

func encOp(code byte, parts ...[]byte) []byte {
	n := 1
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 1, n)
	out[0] = code
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func u64b(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func uvb(v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return b[:n]
}

func keyb(k []byte) []byte {
	return append(uvb(uint64(len(k))), k...)
}

// errReplay wraps replay decoding/execution failures.
func errReplay(format string, args ...any) error {
	return fmt.Errorf("%w: replay: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errReplay("short u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeKey(b []byte) ([]byte, []byte, error) {
	klen, n := binary.Uvarint(b)
	if n <= 0 || int(klen) > len(b)-n {
		return nil, nil, errReplay("bad key length")
	}
	return b[n : n+int(klen)], b[n+int(klen):], nil
}

// ReplayOp re-executes one btree redo op against raw page bytes obtained
// through get (which materializes pages from their home locations and
// earlier replayed records). pageNo is the record's page; ops that span
// pages (splits, merges) fetch the others from get.
func ReplayOp(get func(pno uint64) ([]byte, error), pageNo uint64, payload []byte) error {
	if len(payload) == 0 {
		return errReplay("empty op payload")
	}
	code, b := payload[0], payload[1:]
	data, err := get(pageNo)
	if err != nil {
		return err
	}
	p := pageRef{data}

	switch code {
	case opInit:
		if len(b) < 1 {
			return errReplay("opInit missing type")
		}
		initPage(data, b[0])
		return nil

	case opPut:
		return replayPut(p, b)

	case opDel:
		idx, found, err := p.search(b)
		if err != nil {
			return err
		}
		if found {
			p.removeCell(idx)
		}
		return nil

	case opRedirect:
		key, rest, err := takeKey(b)
		if err != nil {
			return err
		}
		child, _, err := takeU64(rest)
		if err != nil {
			return err
		}
		idx, found, err := p.search(key)
		if err != nil {
			return err
		}
		if !found {
			return errReplay("redirect target key missing on page %d", pageNo)
		}
		p.removeCell(idx)
		if !p.insertRaw(idx, encodeInternalCell(nil, key, child)) {
			return errReplay("redirect reinsert failed on page %d", pageNo)
		}
		return nil

	case opSplitLeaf:
		right, rest, err := takeU64(b)
		if err != nil {
			return err
		}
		sep, _, err := takeKey(rest)
		if err != nil {
			return err
		}
		rdata, err := get(right)
		if err != nil {
			return err
		}
		return replaySplitLeaf(p, pageNo, pageRef{rdata}, right, sep)

	case opSplitInternal:
		right, rest, err := takeU64(b)
		if err != nil {
			return err
		}
		newChild, rest, err := takeU64(rest)
		if err != nil {
			return err
		}
		newKey, _, err := takeKey(rest)
		if err != nil {
			return err
		}
		rdata, err := get(right)
		if err != nil {
			return err
		}
		return replaySplitInternal(p, pageRef{rdata}, newKey, newChild)

	case opNewRoot:
		left, rest, err := takeU64(b)
		if err != nil {
			return err
		}
		right, rest, err := takeU64(rest)
		if err != nil {
			return err
		}
		sep, _, err := takeKey(rest)
		if err != nil {
			return err
		}
		np := initPage(data, pageInternal)
		if !np.insertRaw(0, encodeInternalCell(nil, sep, left)) {
			return errReplay("new-root separator does not fit")
		}
		np.setPtrA(right)
		return nil

	case opMerge:
		left, rest, err := takeU64(b)
		if err != nil {
			return err
		}
		right, _, err := takeU64(rest)
		if err != nil {
			return err
		}
		ldata, err := get(left)
		if err != nil {
			return err
		}
		rdata, err := get(right)
		if err != nil {
			return err
		}
		return replayMerge(p, pageRef{ldata}, left, pageRef{rdata})

	default:
		return errReplay("unknown opcode %d", code)
	}
}

// replayPut re-executes a cell put (replace semantics) on a leaf or
// internal page.
func replayPut(p pageRef, enc []byte) error {
	key := decodeKeyFromRaw(enc)
	idx, found, err := p.search(key)
	if err != nil {
		return err
	}
	if found {
		p.removeCell(idx)
	}
	if !p.insertRaw(idx, enc) {
		// The committed cell set can exceed the runtime page only when an
		// uncommitted delete freed the space the runtime insert used — a
		// crash window the deferred-merge policy narrows but replay must
		// still surface rather than corrupt.
		return errReplay("cell does not fit during put replay")
	}
	return nil
}

// replaySplitLeaf re-partitions the committed cells of the left leaf
// around sep: cells with key > sep move to the (rebuilt) right page.
// Mirrors the runtime split, which chose sep as the largest left-hand
// key; sep itself may name a cell replay has never seen — separators
// need not exist in the tree.
func replaySplitLeaf(lp pageRef, leftPno uint64, rp pageRef, rightPno uint64, sep []byte) error {
	n := lp.ncells()
	var keep, move [][]byte
	for i := 0; i < n; i++ {
		off := lp.slot(i)
		sz := lp.cellLenAt(off)
		raw := make([]byte, sz)
		copy(raw, lp.data[off:off+sz])
		if bytes.Compare(decodeKeyFromRaw(raw), sep) <= 0 {
			keep = append(keep, raw)
		} else {
			move = append(move, raw)
		}
	}
	oldNext := lp.ptrA()
	oldPrev := lp.ptrB()
	lp = initPage(lp.data, pageLeaf)
	for i, raw := range keep {
		if !lp.insertRaw(i, raw) {
			return errReplay("split-leaf left overflow")
		}
	}
	rp = initPage(rp.data, pageLeaf)
	for i, raw := range move {
		if !rp.insertRaw(i, raw) {
			return errReplay("split-leaf right overflow")
		}
	}
	rp.setPtrA(oldNext)
	rp.setPtrB(leftPno)
	lp.setPtrA(rightPno)
	lp.setPtrB(oldPrev)
	return nil
}

// replaySplitInternal re-executes an internal split with the new
// separator cell included — internal pages are written only by system
// transactions, so their replay state matches the runtime state and the
// runtime's middle-cell choice is reproduced exactly.
func replaySplitInternal(p pageRef, rp pageRef, newKey []byte, newChild uint64) error {
	type icell struct {
		key   []byte
		child uint64
	}
	n := p.ncells()
	cells := make([]icell, 0, n+1)
	for i := 0; i < n; i++ {
		c, err := p.decodeCell(i)
		if err != nil {
			return err
		}
		k := make([]byte, len(c.key))
		copy(k, c.key)
		cells = append(cells, icell{k, c.child})
	}
	idx, found, err := p.search(newKey)
	if err != nil {
		return err
	}
	if found {
		return errReplay("split-internal separator already present")
	}
	cells = append(cells[:idx], append([]icell{{newKey, newChild}}, cells[idx:]...)...)
	rightMost := p.ptrA()
	m := len(cells) / 2
	promoted := cells[m]

	rp = initPage(rp.data, pageInternal)
	for i := m + 1; i < len(cells); i++ {
		if !rp.insertRaw(i-m-1, encodeInternalCell(nil, cells[i].key, cells[i].child)) {
			return errReplay("split-internal right overflow")
		}
	}
	rp.setPtrA(rightMost)

	lp := initPage(p.data, pageInternal)
	for i := 0; i < m; i++ {
		if !lp.insertRaw(i, encodeInternalCell(nil, cells[i].key, cells[i].child)) {
			return errReplay("split-internal left overflow")
		}
	}
	lp.setPtrA(promoted.child)
	return nil
}

// replayMerge re-executes a sibling merge plus its parent fixup.
func replayMerge(pp pageRef, lp pageRef, leftPno uint64, rp pageRef) error {
	// Locate the parent cell referring to left.
	li := -1
	for i := 0; i < pp.ncells(); i++ {
		c, err := pp.decodeCell(i)
		if err != nil {
			return err
		}
		if c.child == leftPno {
			li = i
			break
		}
	}
	if li < 0 {
		return errReplay("merge: parent cell for left child missing")
	}
	if lp.typ() != rp.typ() {
		return errReplay("merge: sibling type mismatch")
	}
	if lp.typ() == pageInternal {
		c, err := pp.decodeCell(li)
		if err != nil {
			return err
		}
		sepKey := append([]byte(nil), c.key...)
		if !lp.insertRaw(lp.ncells(), encodeInternalCell(nil, sepKey, lp.ptrA())) {
			return errReplay("merge: separator absorb overflow")
		}
		for i := 0; i < rp.ncells(); i++ {
			off := rp.slot(i)
			sz := rp.cellLenAt(off)
			raw := make([]byte, sz)
			copy(raw, rp.data[off:off+sz])
			if !lp.insertRaw(lp.ncells(), raw) {
				return errReplay("merge: internal absorb overflow")
			}
		}
		lp.setPtrA(rp.ptrA())
	} else {
		for i := 0; i < rp.ncells(); i++ {
			off := rp.slot(i)
			sz := rp.cellLenAt(off)
			raw := make([]byte, sz)
			copy(raw, rp.data[off:off+sz])
			if !lp.insertRaw(lp.ncells(), raw) {
				return errReplay("merge: leaf absorb overflow")
			}
		}
		lp.setPtrA(rp.ptrA())
		// The next leaf's back pointer is fixed by its own range record.
	}
	// Parent: redirect right's reference to left, drop left's cell.
	ri := li + 1
	if ri < pp.ncells() {
		c, err := pp.decodeCell(ri)
		if err != nil {
			return err
		}
		k := append([]byte(nil), c.key...)
		pp.removeCell(ri)
		if !pp.insertRaw(ri, encodeInternalCell(nil, k, leftPno)) {
			return errReplay("merge: parent redirect failed")
		}
	} else {
		pp.setPtrA(leftPno)
	}
	pp.removeCell(li)
	return nil
}

// headerBytes renders the tree-header fields (type, magic, root, height,
// nkeys) for a header range record.
func headerBytes(root uint64, height int, nkeys uint64) []byte {
	b := make([]byte, 32)
	b[offType] = pageHeader
	binary.LittleEndian.PutUint32(b[hOffMagic:], treeMagic)
	binary.LittleEndian.PutUint64(b[hOffRoot:], root)
	binary.LittleEndian.PutUint64(b[hOffHeight:], uint64(height))
	binary.LittleEndian.PutUint64(b[hOffNKeys:], nkeys)
	return b
}
