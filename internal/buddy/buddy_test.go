package buddy

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundtrip(t *testing.T) {
	a := New(0, 1024)
	addr, err := a.Alloc(16)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a.FreeBlocks() != 1024-16 {
		t.Errorf("free = %d, want %d", a.FreeBlocks(), 1024-16)
	}
	if err := a.Free(addr, 16); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if a.FreeBlocks() != 1024 {
		t.Errorf("free after Free = %d, want 1024", a.FreeBlocks())
	}
	s := a.Stats()
	if s.LargestFree != 1024 {
		t.Errorf("largest free = %d, want fully merged 1024", s.LargestFree)
	}
}

func TestAllocRoundsUp(t *testing.T) {
	a := New(0, 64)
	if _, err := a.Alloc(5); err != nil { // reserves 8
		t.Fatal(err)
	}
	if got := a.FreeBlocks(); got != 56 {
		t.Errorf("free = %d, want 56 (5 rounds to 8)", got)
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {63, 64}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := RoundUp(c.in); got != c.want {
			t.Errorf("RoundUp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New(0, 4096)
	for _, n := range []uint64{1, 2, 4, 8, 16, 32, 64} {
		addr, err := a.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		if addr%n != 0 {
			t.Errorf("Alloc(%d) = %d, not aligned", n, addr)
		}
	}
}

func TestAllocDeterministicLowestFirst(t *testing.T) {
	a := New(0, 256)
	a1, _ := a.Alloc(1)
	a2, _ := a.Alloc(1)
	if a1 != 0 || a2 != 1 {
		t.Errorf("first allocs at %d,%d; want 0,1 (lowest-address-first)", a1, a2)
	}
}

func TestBaseOffset(t *testing.T) {
	a := New(100, 64)
	addr, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if addr < 100 || addr+4 > 164 {
		t.Errorf("addr %d outside managed range [100,164)", addr)
	}
	if err := a.Free(addr, 4); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(50, 4); !errors.Is(err, ErrBadFree) {
		t.Errorf("free below base = %v, want ErrBadFree", err)
	}
}

func TestExhaustion(t *testing.T) {
	a := New(0, 16)
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("alloc from empty = %v, want ErrNoSpace", err)
	}
	if a.Stats().FailedAllocs != 1 {
		t.Errorf("FailedAllocs = %d, want 1", a.Stats().FailedAllocs)
	}
}

func TestAllocTooBig(t *testing.T) {
	a := New(0, 100) // decomposed: 64+32+4
	if _, err := a.Alloc(128); !errors.Is(err, ErrNoSpace) {
		t.Errorf("Alloc(128) = %v, want ErrNoSpace", err)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrBadSize) {
		t.Errorf("Alloc(0) = %v, want ErrBadSize", err)
	}
}

func TestNonPowerOfTwoSizeFullyUsable(t *testing.T) {
	a := New(0, 100)
	total := uint64(0)
	for {
		addr, err := a.Alloc(1)
		if err != nil {
			break
		}
		if addr >= 100 {
			t.Fatalf("alloc at %d beyond size 100", addr)
		}
		total++
	}
	if total != 100 {
		t.Errorf("allocated %d singles from size-100 range, want 100", total)
	}
}

func TestBuddyMergeRestoresFullChunk(t *testing.T) {
	a := New(0, 64)
	var addrs []uint64
	for i := 0; i < 64; i++ {
		addr, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	// Free in a scrambled order; merging must still coalesce completely.
	rng := rand.New(rand.NewPCG(1, 2))
	rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	for _, addr := range addrs {
		if err := a.Free(addr, 1); err != nil {
			t.Fatalf("Free(%d): %v", addr, err)
		}
	}
	s := a.Stats()
	if s.LargestFree != 64 || s.FreeChunks != 1 {
		t.Errorf("after all frees: largest=%d chunks=%d, want 64/1", s.LargestFree, s.FreeChunks)
	}
	if s.Merges == 0 {
		t.Error("expected buddy merges to have occurred")
	}
}

func TestFreeValidation(t *testing.T) {
	a := New(0, 64)
	addr, _ := a.Alloc(8)
	if err := a.Free(addr+1, 8); !errors.Is(err, ErrBadFree) {
		t.Errorf("misaligned free = %v, want ErrBadFree", err)
	}
	if err := a.Free(addr, 0); !errors.Is(err, ErrBadSize) {
		t.Errorf("zero free = %v, want ErrBadSize", err)
	}
	if err := a.Free(60, 8); !errors.Is(err, ErrBadFree) {
		t.Errorf("beyond-range free = %v, want ErrBadFree", err)
	}
	if err := a.Free(addr, 8); err != nil {
		t.Fatalf("valid free failed: %v", err)
	}
	if err := a.Free(addr, 8); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free = %v, want ErrDoubleFree", err)
	}
}

func TestDoubleFreeAfterMergeDetected(t *testing.T) {
	a := New(0, 16)
	x, _ := a.Alloc(1) // 0
	y, _ := a.Alloc(1) // 1
	if err := a.Free(x, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(y, 1); err != nil {
		t.Fatal(err)
	}
	// x and y merged into a larger chunk; freeing x again must still fail.
	if err := a.Free(x, 1); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free after merge = %v, want ErrDoubleFree", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	a := New(7, 200)
	var live []uint64
	for i := 0; i < 10; i++ {
		addr, err := a.Alloc(uint64(1 + i%4))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, addr)
	}
	snap := a.Snapshot()
	b, err := Restore(snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b.Base() != 7 || b.Size() != 200 {
		t.Errorf("restored geometry %d/%d, want 7/200", b.Base(), b.Size())
	}
	if b.FreeBlocks() != a.FreeBlocks() {
		t.Errorf("restored free = %d, want %d", b.FreeBlocks(), a.FreeBlocks())
	}
	// Restored allocator must accept frees of the live allocations.
	for i, addr := range live {
		if err := b.Free(addr, uint64(1+i%4)); err != nil {
			t.Fatalf("Free on restored: %v", err)
		}
	}
	if b.FreeBlocks() != 200 {
		t.Errorf("free after releasing all = %d, want 200", b.FreeBlocks())
	}
	if err := b.CheckFreeIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	if _, err := Restore([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short snapshot = %v, want ErrCorrupt", err)
	}
	a := New(0, 64)
	snap := a.Snapshot()
	snap[0] ^= 0xFF // break magic
	if _, err := Restore(snap); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic = %v, want ErrCorrupt", err)
	}
}

func TestRandomOpsIntegrity(t *testing.T) {
	const size = 2048
	a := New(0, size)
	rng := rand.New(rand.NewPCG(42, 99))
	type alloc struct{ addr, n uint64 }
	var live []alloc
	for i := 0; i < 3000; i++ {
		if len(live) == 0 || rng.IntN(2) == 0 {
			n := uint64(1 + rng.IntN(32))
			addr, err := a.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			live = append(live, alloc{addr, n})
		} else {
			i := rng.IntN(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := a.Free(v.addr, v.n); err != nil {
				t.Fatalf("Free(%d,%d): %v", v.addr, v.n, err)
			}
		}
	}
	if err := a.CheckFreeIntegrity(); err != nil {
		t.Fatalf("integrity after random ops: %v", err)
	}
	// Verify live allocations don't overlap free space: free them all, then
	// the allocator must be whole again.
	for _, v := range live {
		if err := a.Free(v.addr, v.n); err != nil {
			t.Fatalf("final Free: %v", err)
		}
	}
	if a.FreeBlocks() != size {
		t.Errorf("free = %d, want %d", a.FreeBlocks(), size)
	}
	s := a.Stats()
	if s.FreeChunks != 1 {
		t.Errorf("free chunks = %d, want 1 (full coalescing)", s.FreeChunks)
	}
}

// TestAllocationsDisjoint is a property test: any sequence of successful
// allocations yields pairwise-disjoint block ranges.
func TestAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := New(0, 4096)
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for _, s := range sizes {
			n := uint64(s%32) + 1
			addr, err := a.Alloc(n)
			if err != nil {
				continue
			}
			ivs = append(ivs, iv{addr, addr + RoundUp(n)})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationMetric(t *testing.T) {
	s := Stats{FreeBlocks: 100, LargestFree: 100}
	if got := s.Fragmentation(); got != 0 {
		t.Errorf("single-chunk fragmentation = %v, want 0", got)
	}
	s = Stats{FreeBlocks: 100, LargestFree: 25}
	if got := s.Fragmentation(); got != 0.75 {
		t.Errorf("fragmentation = %v, want 0.75", got)
	}
	s = Stats{}
	if got := s.Fragmentation(); got != 0 {
		t.Errorf("empty fragmentation = %v, want 0", got)
	}
}

func TestStatsCounters(t *testing.T) {
	a := New(0, 64)
	addr, _ := a.Alloc(1) // splits from 64 down to 1: 6 splits
	s := a.Stats()
	if s.AllocCalls != 1 {
		t.Errorf("AllocCalls = %d, want 1", s.AllocCalls)
	}
	if s.Splits != 6 {
		t.Errorf("Splits = %d, want 6", s.Splits)
	}
	_ = a.Free(addr, 1)
	s = a.Stats()
	if s.FreeCalls != 1 || s.Merges != 6 {
		t.Errorf("FreeCalls=%d Merges=%d, want 1/6", s.FreeCalls, s.Merges)
	}
	if s.UsedBlocks != 0 {
		t.Errorf("UsedBlocks = %d, want 0", s.UsedBlocks)
	}
}

// TestDeferredFreesLimbo: with deferral on, freed runs are not reusable
// until ReleaseLimbo, and the accounting exposes them.
func TestDeferredFreesLimbo(t *testing.T) {
	a := New(0, 64)
	a.SetDeferredFrees(true)
	p, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	free0 := a.FreeBlocks()
	if err := a.Free(p, 4); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks() != free0 {
		t.Fatalf("deferred free changed free count: %d -> %d", free0, a.FreeBlocks())
	}
	if a.LimboBlocks() != 4 {
		t.Fatalf("LimboBlocks = %d, want 4", a.LimboBlocks())
	}
	if a.IsFree(p, 4) {
		t.Fatal("limbo run reported free")
	}
	if err := a.ReleaseLimbo(); err != nil {
		t.Fatal(err)
	}
	if a.LimboBlocks() != 0 || !a.IsFree(p, 4) {
		t.Fatalf("after release: limbo=%d free=%v", a.LimboBlocks(), a.IsFree(p, 4))
	}
	if err := a.CheckFreeIntegrity(); err != nil {
		t.Fatal(err)
	}
}
