// Package buddy implements the binary buddy storage allocator the paper
// names as the lowest layer of the hFAD OSD (Knuth, The Art of Computer
// Programming vol. 1). It hands out power-of-two runs of blocks from a
// managed range, merges freed buddies eagerly, and can snapshot and restore
// its state so a volume can persist allocator state across open/close.
//
// Free lists are kept as sorted slices so allocation order is deterministic
// (lowest address first), which keeps layout experiments reproducible.
package buddy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Allocator errors.
var (
	ErrNoSpace    = errors.New("buddy: out of space")
	ErrBadFree    = errors.New("buddy: invalid free")
	ErrBadSize    = errors.New("buddy: invalid size")
	ErrCorrupt    = errors.New("buddy: corrupt snapshot")
	ErrDoubleFree = errors.New("buddy: double free")
)

const maxOrders = 48 // supports up to 2^47 blocks; far beyond any test device

// Allocator manages the block range [Base, Base+Size).
type Allocator struct {
	mu   sync.Mutex
	base uint64
	size uint64
	// free[k] holds sorted base-relative addresses of free chunks of
	// 2^k blocks.
	free [maxOrders][]uint64

	freeBlocks  uint64
	allocCalls  uint64
	freeCalls   uint64
	splitCount  uint64
	mergeCount  uint64
	failedAlloc uint64

	// Deferred (limbo) frees. While enabled, Free parks runs on the limbo
	// list instead of returning them to the free lists; ReleaseLimbo
	// performs the real frees. Transactional volumes enable this so a run
	// freed by an operation cannot be reallocated — and overwritten —
	// before the free is durable: redo-only recovery has no undo, so if
	// the freeing transaction's commit never reaches the device while a
	// reuser's does, both the old structure (still live on disk) and the
	// new one would own the blocks. Limbo drains at checkpoints, when
	// everything referencing the old run is durably gone.
	deferFrees bool
	limbo      []limboRun
	limboTotal uint64
}

type limboRun struct{ addr, n uint64 }

// New creates an allocator over [base, base+size). Size need not be a
// power of two; the range is decomposed greedily into maximal aligned
// chunks.
func New(base, size uint64) *Allocator {
	a := &Allocator{base: base, size: size}
	// Decompose [0, size) into maximal chunks aligned to their own size.
	addr := uint64(0)
	for addr < size {
		// Largest order allowed by alignment of addr.
		k := maxOrders - 1
		if addr != 0 && bits.TrailingZeros64(addr) < k {
			k = bits.TrailingZeros64(addr)
		}
		// Largest order that fits in the remaining space.
		for k > 0 && addr+(uint64(1)<<k) > size {
			k--
		}
		a.free[k] = append(a.free[k], addr)
		addr += uint64(1) << k
	}
	a.freeBlocks = size
	return a
}

// Base returns the first managed block address.
func (a *Allocator) Base() uint64 { return a.base }

// Size returns the number of managed blocks.
func (a *Allocator) Size() uint64 { return a.size }

// orderFor returns the smallest k with 2^k >= n.
func orderFor(n uint64) int {
	if n <= 1 {
		return 0
	}
	return 64 - bits.LeadingZeros64(n-1)
}

// RoundUp returns the number of blocks actually reserved for a request of
// n blocks (the enclosing power of two).
func RoundUp(n uint64) uint64 {
	return uint64(1) << orderFor(n)
}

// Alloc reserves a run of at least n blocks and returns its absolute
// starting block address. The reservation is RoundUp(n) blocks; Free must
// be called with the same n (or its round-up).
func (a *Allocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("%w: zero-length alloc", ErrBadSize)
	}
	k := orderFor(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Find the smallest order >= k with a free chunk.
	j := k
	for j < maxOrders && len(a.free[j]) == 0 {
		j++
	}
	if j >= maxOrders {
		a.failedAlloc++
		return 0, fmt.Errorf("%w: want %d blocks (order %d), %d free", ErrNoSpace, n, k, a.freeBlocks)
	}
	// Take the lowest-addressed chunk at order j.
	addr := a.free[j][0]
	a.free[j] = a.free[j][1:]
	// Split down to order k, returning upper halves to the free lists.
	for j > k {
		j--
		a.splitCount++
		upper := addr + (uint64(1) << j)
		a.insertFree(j, upper)
	}
	a.allocCalls++
	a.freeBlocks -= uint64(1) << k
	return a.base + addr, nil
}

// SetDeferredFrees toggles limbo mode (see the field comment). Frees
// already parked stay parked until ReleaseLimbo.
func (a *Allocator) SetDeferredFrees(on bool) {
	a.mu.Lock()
	a.deferFrees = on
	a.mu.Unlock()
}

// LimboBlocks returns the number of blocks parked by deferred frees.
// fsck counts them alongside free blocks: they are owned by no structure
// but not yet reusable.
func (a *Allocator) LimboBlocks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limboTotal
}

// ReleaseLimbo performs every deferred free. Call only at a point where
// the freed runs are durably unreferenced (after a checkpoint or clean
// flush).
func (a *Allocator) ReleaseLimbo() error {
	a.mu.Lock()
	runs := a.limbo
	a.limbo = nil
	a.limboTotal = 0
	a.mu.Unlock()
	for _, r := range runs {
		if err := a.freeNow(r.addr, r.n); err != nil {
			return err
		}
	}
	return nil
}

// Free releases the run previously returned by Alloc(addr, n). The n must
// match the allocation request (any value with the same RoundUp). In
// deferred mode the run is parked in limbo until ReleaseLimbo.
func (a *Allocator) Free(addr, n uint64) error {
	a.mu.Lock()
	if a.deferFrees {
		a.limbo = append(a.limbo, limboRun{addr, n})
		a.limboTotal += RoundUp(n)
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	return a.freeNow(addr, n)
}

// freeNow is the real free.
func (a *Allocator) freeNow(addr, n uint64) error {
	if n == 0 {
		return fmt.Errorf("%w: zero-length free", ErrBadSize)
	}
	if addr < a.base {
		return fmt.Errorf("%w: address %d below base %d", ErrBadFree, addr, a.base)
	}
	rel := addr - a.base
	k := orderFor(n)
	sz := uint64(1) << k
	if rel+sz > a.size {
		return fmt.Errorf("%w: [%d,+%d) beyond range size %d", ErrBadFree, rel, sz, a.size)
	}
	if rel&(sz-1) != 0 {
		return fmt.Errorf("%w: address %d not aligned to order %d", ErrBadFree, addr, k)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.overlapsFreeLocked(rel, k) {
		return fmt.Errorf("%w: [%d,+%d)", ErrDoubleFree, rel, sz)
	}
	a.freeCalls++
	a.freeBlocks += sz
	// Merge with buddy while possible.
	for k < maxOrders-1 {
		buddy := rel ^ (uint64(1) << k)
		if buddy+(uint64(1)<<k) > a.size {
			break
		}
		if !a.removeFree(k, buddy) {
			break
		}
		a.mergeCount++
		if buddy < rel {
			rel = buddy
		}
		k++
	}
	a.insertFree(k, rel)
	return nil
}

// overlapsFreeLocked reports whether the chunk [rel, rel+2^k) overlaps any
// chunk currently on a free list. Used to detect double frees.
func (a *Allocator) overlapsFreeLocked(rel uint64, k int) bool {
	lo, hi := rel, rel+(uint64(1)<<k)
	for j := 0; j < maxOrders; j++ {
		fl := a.free[j]
		if len(fl) == 0 {
			continue
		}
		sz := uint64(1) << j
		// First chunk whose end is > lo.
		i := sort.Search(len(fl), func(i int) bool { return fl[i]+sz > lo })
		if i < len(fl) && fl[i] < hi {
			return true
		}
	}
	return false
}

func (a *Allocator) insertFree(k int, rel uint64) {
	fl := a.free[k]
	i := sort.Search(len(fl), func(i int) bool { return fl[i] >= rel })
	fl = append(fl, 0)
	copy(fl[i+1:], fl[i:])
	fl[i] = rel
	a.free[k] = fl
}

// removeFree removes rel from free list k, reporting whether it was found.
func (a *Allocator) removeFree(k int, rel uint64) bool {
	fl := a.free[k]
	i := sort.Search(len(fl), func(i int) bool { return fl[i] >= rel })
	if i >= len(fl) || fl[i] != rel {
		return false
	}
	a.free[k] = append(fl[:i], fl[i+1:]...)
	return true
}

// Stats describes allocator occupancy and churn.
type Stats struct {
	Base, Size   uint64
	FreeBlocks   uint64
	UsedBlocks   uint64
	LargestFree  uint64 // blocks in the largest free chunk
	FreeChunks   int
	AllocCalls   uint64
	FreeCalls    uint64
	Splits       uint64
	Merges       uint64
	FailedAllocs uint64
}

// Fragmentation returns 1 - largestFree/freeBlocks, the standard external
// fragmentation metric (0 when all free space is one chunk).
func (s Stats) Fragmentation() float64 {
	if s.FreeBlocks == 0 {
		return 0
	}
	return 1 - float64(s.LargestFree)/float64(s.FreeBlocks)
}

// Stats returns a snapshot of allocator state.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{
		Base:         a.base,
		Size:         a.size,
		FreeBlocks:   a.freeBlocks,
		UsedBlocks:   a.size - a.freeBlocks,
		AllocCalls:   a.allocCalls,
		FreeCalls:    a.freeCalls,
		Splits:       a.splitCount,
		Merges:       a.mergeCount,
		FailedAllocs: a.failedAlloc,
	}
	for k := maxOrders - 1; k >= 0; k-- {
		if n := len(a.free[k]); n > 0 {
			if s.LargestFree == 0 {
				s.LargestFree = uint64(1) << k
			}
			s.FreeChunks += n
		}
	}
	return s
}

// FreeBlocks returns the number of free blocks.
func (a *Allocator) FreeBlocks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freeBlocks
}

const snapMagic = 0xb0dd1e5a

// Snapshot serializes the allocator's free lists. The snapshot is
// self-describing and validated on Restore.
func (a *Allocator) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []byte
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	put64(snapMagic)
	put64(a.base)
	put64(a.size)
	for k := 0; k < maxOrders; k++ {
		put64(uint64(len(a.free[k])))
		for _, addr := range a.free[k] {
			put64(addr)
		}
	}
	return out
}

// Restore reconstructs an allocator from a Snapshot.
func Restore(data []byte) (*Allocator, error) {
	pos := 0
	get64 := func() (uint64, error) {
		if pos+8 > len(data) {
			return 0, ErrCorrupt
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, nil
	}
	magic, err := get64()
	if err != nil || magic != snapMagic {
		return nil, ErrCorrupt
	}
	base, err := get64()
	if err != nil {
		return nil, err
	}
	size, err := get64()
	if err != nil {
		return nil, err
	}
	a := &Allocator{base: base, size: size}
	var freeTotal uint64
	for k := 0; k < maxOrders; k++ {
		n, err := get64()
		if err != nil {
			return nil, err
		}
		if n > size {
			return nil, ErrCorrupt
		}
		fl := make([]uint64, n)
		for i := range fl {
			v, err := get64()
			if err != nil {
				return nil, err
			}
			if v+(uint64(1)<<k) > size {
				return nil, fmt.Errorf("%w: chunk beyond range", ErrCorrupt)
			}
			fl[i] = v
		}
		if !sort.SliceIsSorted(fl, func(i, j int) bool { return fl[i] < fl[j] }) {
			return nil, fmt.Errorf("%w: unsorted free list", ErrCorrupt)
		}
		a.free[k] = fl
		freeTotal += n << k
	}
	if freeTotal > size {
		return nil, fmt.Errorf("%w: free total %d exceeds size %d", ErrCorrupt, freeTotal, size)
	}
	a.freeBlocks = freeTotal
	return a, nil
}

// ReplaceWith copies src's free-list state into a, which must manage the
// same block range. Components that captured a pointer to a keep working
// against the replaced state — the crash-recovery rebuild path relies on
// this.
func (a *Allocator) ReplaceWith(src *Allocator) error {
	if src.base != a.base || src.size != a.size {
		return fmt.Errorf("%w: geometry mismatch", ErrBadSize)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	for k := range a.free {
		a.free[k] = append([]uint64(nil), src.free[k]...)
	}
	a.freeBlocks = src.freeBlocks
	return nil
}

// IsFree reports whether any block of [addr, addr+n) is currently on a
// free list. Used by fsck to cross-check reachability against allocation.
func (a *Allocator) IsFree(addr, n uint64) bool {
	if addr < a.base {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	k := orderFor(n)
	return a.overlapsFreeLocked(addr-a.base, k)
}

// FromUsed reconstructs an allocator for [base, base+size) in which the
// given absolute block ranges are allocated and everything else is free.
// This is the crash-recovery path: after replaying the WAL, the volume
// walks all reachable structures and rebuilds allocator state from them.
// Ranges may be unsorted but must not overlap or leave the region.
func FromUsed(base, size uint64, used [][2]uint64) (*Allocator, error) {
	rel := make([][2]uint64, 0, len(used))
	for _, r := range used {
		if r[1] <= r[0] {
			return nil, fmt.Errorf("%w: empty used range", ErrBadSize)
		}
		if r[0] < base || r[1] > base+size {
			return nil, fmt.Errorf("%w: used range [%d,%d) outside region", ErrBadFree, r[0], r[1])
		}
		rel = append(rel, [2]uint64{r[0] - base, r[1] - base})
	}
	sort.Slice(rel, func(i, j int) bool { return rel[i][0] < rel[j][0] })
	for i := 1; i < len(rel); i++ {
		if rel[i][0] < rel[i-1][1] {
			return nil, fmt.Errorf("%w: overlapping used ranges", ErrBadFree)
		}
	}
	a := &Allocator{base: base, size: size}
	addGap := func(lo, hi uint64) {
		for lo < hi {
			k := maxOrders - 1
			if lo != 0 && bits.TrailingZeros64(lo) < k {
				k = bits.TrailingZeros64(lo)
			}
			for k > 0 && lo+(uint64(1)<<k) > hi {
				k--
			}
			a.free[k] = append(a.free[k], lo)
			a.freeBlocks += uint64(1) << k
			lo += uint64(1) << k
		}
	}
	cursor := uint64(0)
	for _, r := range rel {
		if cursor < r[0] {
			addGap(cursor, r[0])
		}
		cursor = r[1]
	}
	if cursor < size {
		addGap(cursor, size)
	}
	return a, nil
}

// CheckFreeIntegrity verifies that no two free chunks overlap and that all
// lie within the managed range. It is O(chunks log chunks); used by fsck
// and property tests.
func (a *Allocator) CheckFreeIntegrity() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	type chunk struct{ lo, hi uint64 }
	var chunks []chunk
	for k := 0; k < maxOrders; k++ {
		sz := uint64(1) << k
		for _, addr := range a.free[k] {
			if addr+sz > a.size {
				return fmt.Errorf("buddy: free chunk [%d,+%d) beyond size %d", addr, sz, a.size)
			}
			if addr&(sz-1) != 0 {
				return fmt.Errorf("buddy: free chunk %d misaligned for order %d", addr, k)
			}
			chunks = append(chunks, chunk{addr, addr + sz})
		}
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].lo < chunks[j].lo })
	for i := 1; i < len(chunks); i++ {
		if chunks[i].lo < chunks[i-1].hi {
			return fmt.Errorf("buddy: overlapping free chunks [%d,%d) and [%d,%d)",
				chunks[i-1].lo, chunks[i-1].hi, chunks[i].lo, chunks[i].hi)
		}
	}
	return nil
}
