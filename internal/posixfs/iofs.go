package posixfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path"
	"time"

	"repro/internal/osd"
)

// IOFS returns a read-only io/fs.FS view of the POSIX layer, rooted at
// "/". It implements fs.FS, fs.ReadDirFS, fs.StatFS, and fs.ReadFileFS,
// and passes testing/fstest.TestFS — so the standard library's tools
// (fs.WalkDir, archive/tar, ...) operate directly on an hFAD volume.
func (f *FS) IOFS() iofs.FS { return &ioFS{f} }

type ioFS struct{ fs *FS }

// toInternal maps an io/fs name ("." or "a/b") to a rooted path.
func toInternal(name string) (string, error) {
	if !iofs.ValidPath(name) {
		return "", fmt.Errorf("%s: %w", name, iofs.ErrInvalid)
	}
	if name == "." {
		return "/", nil
	}
	return "/" + name, nil
}

func (x *ioFS) Open(name string) (iofs.File, error) {
	p, err := toInternal(name)
	if err != nil {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: iofs.ErrInvalid}
	}
	m, err := x.fs.Stat(p)
	if err != nil {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: mapErr(err)}
	}
	if m.Mode&osd.ModeDir != 0 {
		entries, err := x.fs.ReadDir(p)
		if err != nil {
			return nil, &iofs.PathError{Op: "open", Path: name, Err: mapErr(err)}
		}
		return &ioDir{name: path.Base(name), meta: m, entries: entries}, nil
	}
	file, err := x.fs.Open(p)
	if err != nil {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: mapErr(err)}
	}
	return &ioFile{name: path.Base(name), meta: m, f: file}, nil
}

func (x *ioFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	p, err := toInternal(name)
	if err != nil {
		return nil, &iofs.PathError{Op: "readdir", Path: name, Err: iofs.ErrInvalid}
	}
	entries, err := x.fs.ReadDir(p)
	if err != nil {
		return nil, &iofs.PathError{Op: "readdir", Path: name, Err: mapErr(err)}
	}
	out := make([]iofs.DirEntry, len(entries))
	for i, e := range entries {
		out[i] = dirEntry{e}
	}
	return out, nil
}

func (x *ioFS) Stat(name string) (iofs.FileInfo, error) {
	p, err := toInternal(name)
	if err != nil {
		return nil, &iofs.PathError{Op: "stat", Path: name, Err: iofs.ErrInvalid}
	}
	m, err := x.fs.Stat(p)
	if err != nil {
		return nil, &iofs.PathError{Op: "stat", Path: name, Err: mapErr(err)}
	}
	return fileInfo{name: path.Base(name), meta: m}, nil
}

func (x *ioFS) ReadFile(name string) ([]byte, error) {
	p, err := toInternal(name)
	if err != nil {
		return nil, &iofs.PathError{Op: "readfile", Path: name, Err: iofs.ErrInvalid}
	}
	data, err := x.fs.ReadFile(p)
	if err != nil {
		return nil, &iofs.PathError{Op: "readfile", Path: name, Err: mapErr(err)}
	}
	return data, nil
}

func mapErr(err error) error {
	switch {
	case errors.Is(err, ErrNotExist):
		return iofs.ErrNotExist
	case errors.Is(err, ErrExist):
		return iofs.ErrExist
	default:
		return err
	}
}

// fileInfo adapts osd.Meta to fs.FileInfo.
type fileInfo struct {
	name string
	meta osd.Meta
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return int64(fi.meta.Size) }
func (fi fileInfo) Mode() iofs.FileMode {
	m := iofs.FileMode(fi.meta.Mode & osd.ModePermMask)
	if fi.meta.Mode&osd.ModeDir != 0 {
		m |= iofs.ModeDir
	}
	return m
}
func (fi fileInfo) ModTime() time.Time { return time.Unix(0, fi.meta.Mtime) }
func (fi fileInfo) IsDir() bool        { return fi.meta.Mode&osd.ModeDir != 0 }
func (fi fileInfo) Sys() any           { return fi.meta }

// dirEntry adapts DirEntry to fs.DirEntry.
type dirEntry struct{ e DirEntry }

func (d dirEntry) Name() string { return d.e.Name }
func (d dirEntry) IsDir() bool  { return d.e.Meta.Mode&osd.ModeDir != 0 }
func (d dirEntry) Type() iofs.FileMode {
	return fileInfo{d.e.Name, d.e.Meta}.Mode().Type()
}
func (d dirEntry) Info() (iofs.FileInfo, error) {
	return fileInfo{d.e.Name, d.e.Meta}, nil
}

// ioFile adapts File to fs.File.
type ioFile struct {
	name string
	meta osd.Meta
	f    *File
}

func (x *ioFile) Stat() (iofs.FileInfo, error) { return fileInfo{x.name, x.meta}, nil }
func (x *ioFile) Read(p []byte) (int, error)   { return x.f.Read(p) }
func (x *ioFile) Close() error                 { return x.f.Close() }

// Seek lets fs users with io.Seeker expectations work too.
func (x *ioFile) Seek(offset int64, whence int) (int64, error) {
	return x.f.Seek(offset, whence)
}

// ReadAt supports fs.File consumers that type-assert io.ReaderAt.
func (x *ioFile) ReadAt(p []byte, off int64) (int, error) {
	return x.f.ReadAt(p, off)
}

// ioDir adapts a directory listing to fs.ReadDirFile.
type ioDir struct {
	name    string
	meta    osd.Meta
	entries []DirEntry
	pos     int
}

func (d *ioDir) Stat() (iofs.FileInfo, error) { return fileInfo{d.name, d.meta}, nil }
func (d *ioDir) Read(p []byte) (int, error) {
	return 0, &iofs.PathError{Op: "read", Path: d.name, Err: errors.New("is a directory")}
}
func (d *ioDir) Close() error { return nil }

func (d *ioDir) ReadDir(n int) ([]iofs.DirEntry, error) {
	if n <= 0 {
		out := make([]iofs.DirEntry, 0, len(d.entries)-d.pos)
		for ; d.pos < len(d.entries); d.pos++ {
			out = append(out, dirEntry{d.entries[d.pos]})
		}
		return out, nil
	}
	if d.pos >= len(d.entries) {
		return nil, io.EOF
	}
	end := d.pos + n
	if end > len(d.entries) {
		end = len(d.entries)
	}
	out := make([]iofs.DirEntry, 0, end-d.pos)
	for ; d.pos < end; d.pos++ {
		out = append(out, dirEntry{d.entries[d.pos]})
	}
	return out, nil
}
