package posixfs

import (
	"fmt"
	"io"

	"repro/internal/osd"
)

// File is an open POSIX file handle. It implements io.Reader, io.Writer,
// io.Seeker, io.ReaderAt, io.WriterAt, and io.Closer, and additionally
// exposes the two hFAD access extensions — Insert and TruncateRange — so
// applications using the compatibility layer can still reach the native
// capabilities.
type File struct {
	fs       *FS
	obj      *osd.Object
	path     string
	pos      uint64
	writable bool
	closed   bool
}

// Path returns the path the file was opened by.
func (f *File) Path() string { return f.path }

// OID returns the underlying object's identifier.
func (f *File) OID() osd.OID { return f.obj.OID() }

// Object exposes the underlying OSD object (native-API escape hatch).
func (f *File) Object() *osd.Object { return f.obj }

// Size returns the current file size.
func (f *File) Size() uint64 { return f.obj.Size() }

// Stat returns the file's metadata.
func (f *File) Stat() (osd.Meta, error) { return f.obj.Stat() }

func (f *File) check(write bool) error {
	if f.closed {
		return fmt.Errorf("%s: file closed: %w", f.path, ErrInvalid)
	}
	if write && !f.writable {
		return fmt.Errorf("%s: read-only handle: %w", f.path, ErrInvalid)
	}
	return nil
}

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	if err := f.check(false); err != nil {
		return 0, err
	}
	n, err := f.obj.ReadAt(p, f.pos)
	f.pos += uint64(n)
	return n, err
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if err := f.check(false); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: negative offset: %w", f.path, ErrInvalid)
	}
	return f.obj.ReadAt(p, uint64(off))
}

// Write implements io.Writer, advancing the file position.
func (f *File) Write(p []byte) (int, error) {
	if err := f.check(true); err != nil {
		return 0, err
	}
	if err := f.obj.WriteAt(p, f.pos); err != nil {
		return 0, err
	}
	f.pos += uint64(len(p))
	return len(p), nil
}

// WriteAt implements io.WriterAt.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.check(true); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: negative offset: %w", f.path, ErrInvalid)
	}
	if err := f.obj.WriteAt(p, uint64(off)); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if err := f.check(false); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(f.pos)
	case io.SeekEnd:
		base = int64(f.obj.Size())
	default:
		return 0, fmt.Errorf("%s: bad whence %d: %w", f.path, whence, ErrInvalid)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("%s: negative position: %w", f.path, ErrInvalid)
	}
	f.pos = uint64(np)
	return np, nil
}

// Insert inserts p at offset off, shifting later bytes — the paper's
// extension to the access interface.
func (f *File) Insert(off uint64, p []byte) error {
	if err := f.check(true); err != nil {
		return err
	}
	return f.obj.InsertAt(off, p)
}

// TruncateRange removes length bytes at offset off — the paper's
// two-argument truncate.
func (f *File) TruncateRange(off, length uint64) error {
	if err := f.check(true); err != nil {
		return err
	}
	return f.obj.TruncateRange(off, length)
}

// Truncate sets the file size.
func (f *File) Truncate(size uint64) error {
	if err := f.check(true); err != nil {
		return err
	}
	return f.obj.Truncate(size)
}

// Sync flushes volume state for durability.
func (f *File) Sync() error {
	if err := f.check(false); err != nil {
		return err
	}
	return f.fs.vol.Sync()
}

// Close releases the handle.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("%s: already closed: %w", f.path, ErrInvalid)
	}
	f.closed = true
	return f.obj.Close()
}
