package posixfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"testing"
	"time"

	"repro/internal/osd"
)

func TestOpenRWRejectsDirectory(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenRW("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("OpenRW(dir) = %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("ReadFile(dir) = %v", err)
	}
	if err := fs.Truncate("/d", 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("Truncate(dir) = %v", err)
	}
}

func TestCreateOverDirectoryFails(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/d", 0o644); !errors.Is(err, ErrIsDir) {
		t.Errorf("Create over dir = %v", err)
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadAt(make([]byte, 4), -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative ReadAt = %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative WriteAt = %v", err)
	}
	if _, err := f.Seek(0, 99); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad whence = %v", err)
	}
}

func TestDoubleCloseFile(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrInvalid) {
		t.Errorf("double close = %v", err)
	}
}

func TestEmptyAndWeirdPaths(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.Stat(""); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty path = %v", err)
	}
	// Trailing slashes and dots clean away.
	if err := fs.Mkdir("/x/", 0o755); err != nil {
		t.Fatalf("trailing slash mkdir = %v", err)
	}
	if _, err := fs.Stat("/x/."); err != nil {
		t.Errorf("dot path = %v", err)
	}
}

func TestChtimes(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1111, 0)
	mt := time.Unix(2222, 0)
	if err := fs.Chtimes("/f", at, mt); err != nil {
		t.Fatal(err)
	}
	m, _ := fs.Stat("/f")
	if m.Atime != at.UnixNano() || m.Mtime != mt.UnixNano() {
		t.Errorf("times = %d/%d", m.Atime, m.Mtime)
	}
}

func TestIOFSInvalidNames(t *testing.T) {
	fs, _ := newFS(t)
	x := fs.IOFS()
	if _, err := x.Open("/abs"); err == nil {
		t.Error("absolute name accepted by io/fs adapter")
	}
	if _, err := x.Open("a/../b"); err == nil {
		t.Error("dotdot name accepted")
	}
	var pe *iofs.PathError
	_, err := x.Open("missing.txt")
	if !errors.As(err, &pe) || !errors.Is(err, iofs.ErrNotExist) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestIOFSDirReadPagination(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/p", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if err := fs.WriteFile("/p/"+n, []byte(n), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.IOFS().Open("p")
	if err != nil {
		t.Fatal(err)
	}
	dir, ok := f.(iofs.ReadDirFile)
	if !ok {
		t.Fatal("directory does not implement ReadDirFile")
	}
	batch1, err := dir.ReadDir(2)
	if err != nil || len(batch1) != 2 {
		t.Fatalf("batch1 = %d, %v", len(batch1), err)
	}
	batch2, err := dir.ReadDir(2)
	if err != nil || len(batch2) != 2 {
		t.Fatalf("batch2 = %d, %v", len(batch2), err)
	}
	batch3, err := dir.ReadDir(10)
	if err != nil || len(batch3) != 1 {
		t.Fatalf("batch3 = %d, %v", len(batch3), err)
	}
	if _, err := dir.ReadDir(1); !errors.Is(err, io.EOF) {
		t.Errorf("post-end ReadDir = %v, want EOF", err)
	}
	// Reading a directory as a file fails.
	if _, err := f.Read(make([]byte, 4)); err == nil {
		t.Error("Read on directory succeeded")
	}
}

func TestRenameMissingSourceAndBadTargets(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Rename("/ghost", "/elsewhere"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing = %v", err)
	}
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Renaming a file onto an existing directory must fail.
	if err := fs.Rename("/f", "/d"); !errors.Is(err, ErrExist) {
		t.Errorf("rename onto dir = %v", err)
	}
	// Rename to itself is a no-op.
	if err := fs.Rename("/f", "/f"); err != nil {
		t.Errorf("self rename = %v", err)
	}
}

func TestLargeFileThroughPosix(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for i := 0; i < 32; i++ { // 2 MiB
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if f.Size() != 2<<20 {
		t.Errorf("Size = %d", f.Size())
	}
	// Sparse extension via WriteAt.
	if _, err := f.WriteAt([]byte("end"), 5<<20); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5<<20+3 {
		t.Errorf("sparse Size = %d", f.Size())
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 5<<20); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "end" {
		t.Errorf("sparse read = %q", buf)
	}
	f.Close()
	m, _ := fs.Stat("/big")
	if m.Mode&osd.ModeRegular == 0 {
		t.Error("mode lost")
	}
}

func TestMkdirAllOverFileFails(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/f", 0o755); err == nil {
		t.Error("MkdirAll over file succeeded")
	}
	if err := fs.MkdirAll("/f/sub", 0o755); err == nil {
		t.Error("MkdirAll under file succeeded")
	}
}
