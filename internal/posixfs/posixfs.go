// Package posixfs implements the paper's POSIX compatibility layer: "we
// support POSIX naming as a thin layer atop the native API. A naming
// operation on POSIX path P translates into a lookup on the tag/value
// pair: POSIX/P."
//
// The layer maintains two indexes over the native naming API:
//
//	POSIX  full cleaned path → OID     (direct lookup, the paper's scheme)
//	PDIR   parent\x00name → OID        (directory listing)
//
// A POSIX path is "simply one name among many possible names": hard links
// are just additional POSIX names on the same object, and an object whose
// last name disappears is reclaimed. Directories are ordinary objects
// (mode bits only — their listing lives in the PDIR index, "directories
// also potentially map nicely onto btrees").
//
// The paper's prototype mounts through FUSE; stdlib-only Go substitutes an
// in-process VFS plus an io/fs adapter (fs.FS / ReadDirFS / StatFS) that
// passes testing/fstest.TestFS, so stdlib tools — fs.WalkDir, archive/tar
// — run unmodified against an hFAD volume, standing in for the
// "general-purpose tools (ls, tar)" the introduction wants preserved.
package posixfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/osd"
)

// Errors mirror the iofs error values so errors.Is works naturally.
var (
	ErrNotExist  = iofs.ErrNotExist
	ErrExist     = iofs.ErrExist
	ErrInvalid   = iofs.ErrInvalid
	ErrNotDir    = errors.New("posixfs: not a directory")
	ErrIsDir     = errors.New("posixfs: is a directory")
	ErrNotEmpty  = errors.New("posixfs: directory not empty")
	ErrCrossLink = errors.New("posixfs: cannot hard-link a directory")
)

const pdirTag = "PDIR"

// FS is a POSIX view over an hFAD volume.
type FS struct {
	vol *core.Volume
	mu  sync.Mutex // serializes structural namespace changes
}

// New attaches a POSIX layer to the volume, creating the root directory
// if absent.
func New(vol *core.Volume) (*FS, error) {
	fs := &FS{vol: vol}
	if _, err := fs.lookup("/"); errors.Is(err, ErrNotExist) {
		obj, err := vol.OSD.CreateObject("root", osd.ModeDir|0o755)
		if err != nil {
			return nil, err
		}
		defer obj.Close()
		if err := vol.AddName(obj.OID(), index.TagPOSIX, []byte("/")); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	return fs, nil
}

// Volume returns the underlying volume.
func (f *FS) Volume() *core.Volume { return f.vol }

// clean canonicalizes a path to a rooted, slash-separated form.
func clean(p string) (string, error) {
	if p == "" {
		return "", fmt.Errorf("%w: empty path", ErrInvalid)
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	c := path.Clean(p)
	return c, nil
}

func split(p string) (dir, name string) {
	d, n := path.Split(p)
	if d != "/" {
		d = strings.TrimSuffix(d, "/")
	}
	return d, n
}

func pdirKey(dir, name string) []byte {
	return append(append([]byte(dir), 0x00), name...)
}

// lookup resolves a cleaned path to an OID via the POSIX index.
func (f *FS) lookup(p string) (core.OID, error) {
	ids, err := f.vol.Resolve(core.TagValue{Tag: index.TagPOSIX, Value: []byte(p)})
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	return ids[0], nil
}

// Lookup resolves a path to its object ID.
func (f *FS) Lookup(p string) (core.OID, error) {
	c, err := clean(p)
	if err != nil {
		return 0, err
	}
	return f.lookup(c)
}

// statPath returns metadata for a path.
func (f *FS) statPath(p string) (osd.Meta, error) {
	oid, err := f.lookup(p)
	if err != nil {
		return osd.Meta{}, err
	}
	return f.vol.OSD.Stat(oid)
}

// Stat returns file metadata.
func (f *FS) Stat(p string) (osd.Meta, error) {
	c, err := clean(p)
	if err != nil {
		return osd.Meta{}, err
	}
	return f.statPath(c)
}

// requireDir errs unless p names a directory; returns its OID.
func (f *FS) requireDir(p string) (core.OID, error) {
	m, err := f.statPath(p)
	if err != nil {
		return 0, err
	}
	if m.Mode&osd.ModeDir == 0 {
		return 0, fmt.Errorf("%s: %w", p, ErrNotDir)
	}
	return m.OID, nil
}

// Mkdir creates a directory.
func (f *FS) Mkdir(p string, perm uint32) error {
	c, err := clean(p)
	if err != nil {
		return err
	}
	if c == "/" {
		return fmt.Errorf("/: %w", ErrExist)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, name := split(c)
	if _, err := f.requireDir(dir); err != nil {
		return err
	}
	if _, err := f.lookup(c); err == nil {
		return fmt.Errorf("%s: %w", c, ErrExist)
	}
	obj, err := f.vol.OSD.CreateObject("", osd.ModeDir|(perm&osd.ModePermMask))
	if err != nil {
		return err
	}
	defer obj.Close()
	return f.link(obj.OID(), dir, name, c)
}

// MkdirAll creates p and any missing parents.
func (f *FS) MkdirAll(p string, perm uint32) error {
	c, err := clean(p)
	if err != nil {
		return err
	}
	if c == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(c, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur = cur + "/" + part
		err := f.Mkdir(cur, perm)
		switch {
		case err == nil, errors.Is(err, ErrExist):
		default:
			return err
		}
	}
	// The final component must be a directory.
	_, err = f.requireDir(c)
	return err
}

// link registers the POSIX and PDIR names for oid.
func (f *FS) link(oid core.OID, dir, name, full string) error {
	if err := f.vol.AddName(oid, index.TagPOSIX, []byte(full)); err != nil {
		return err
	}
	return f.vol.AddName(oid, pdirTag, pdirKey(dir, name))
}

// unlink removes the POSIX and PDIR names for oid.
func (f *FS) unlink(oid core.OID, dir, name, full string) error {
	if err := f.vol.RemoveName(oid, index.TagPOSIX, []byte(full)); err != nil {
		return err
	}
	return f.vol.RemoveName(oid, pdirTag, pdirKey(dir, name))
}

// Create creates (or truncates) a regular file and opens it for writing.
func (f *FS) Create(p string, perm uint32) (*File, error) {
	c, err := clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, name := split(c)
	if _, err := f.requireDir(dir); err != nil {
		return nil, err
	}
	if oid, err := f.lookup(c); err == nil {
		// Exists: truncate, per O_CREATE|O_TRUNC semantics.
		m, err := f.vol.OSD.Stat(oid)
		if err != nil {
			return nil, err
		}
		if m.Mode&osd.ModeDir != 0 {
			return nil, fmt.Errorf("%s: %w", c, ErrIsDir)
		}
		obj, err := f.vol.OSD.OpenObject(oid)
		if err != nil {
			return nil, err
		}
		if err := obj.Truncate(0); err != nil {
			obj.Close()
			return nil, err
		}
		return &File{fs: f, obj: obj, path: c, writable: true}, nil
	}
	obj, err := f.vol.OSD.CreateObject("", osd.ModeRegular|(perm&osd.ModePermMask))
	if err != nil {
		return nil, err
	}
	if err := f.link(obj.OID(), dir, name, c); err != nil {
		obj.Close()
		return nil, err
	}
	return &File{fs: f, obj: obj, path: c, writable: true}, nil
}

// Open opens an existing file or directory for reading.
func (f *FS) Open(p string) (*File, error) {
	c, err := clean(p)
	if err != nil {
		return nil, err
	}
	oid, err := f.lookup(c)
	if err != nil {
		return nil, err
	}
	obj, err := f.vol.OSD.OpenObject(oid)
	if err != nil {
		return nil, err
	}
	return &File{fs: f, obj: obj, path: c}, nil
}

// OpenRW opens an existing regular file for reading and writing.
func (f *FS) OpenRW(p string) (*File, error) {
	file, err := f.Open(p)
	if err != nil {
		return nil, err
	}
	m, err := file.obj.Stat()
	if err != nil {
		file.Close()
		return nil, err
	}
	if m.Mode&osd.ModeDir != 0 {
		file.Close()
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	file.writable = true
	return file, nil
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	OID  core.OID
	Meta osd.Meta
}

// ReadDir lists a directory in name order.
func (f *FS) ReadDir(p string) ([]DirEntry, error) {
	c, err := clean(p)
	if err != nil {
		return nil, err
	}
	if _, err := f.requireDir(c); err != nil {
		return nil, err
	}
	st, err := f.vol.Registry().Get(pdirTag)
	if err != nil {
		return nil, err
	}
	ranged := st.(index.Ranged)
	// All PDIR values with prefix c+\x00: range [c\x00, c\x01).
	lo := append([]byte(c), 0x00)
	hi := append([]byte(c), 0x01)
	_ = ranged
	// RangeLookup returns OIDs but we need names: scan the reverse names
	// per OID would be awkward; instead list via the KV index range and
	// recover names from the reverse index entries of each OID.
	oids, err := ranged.RangeLookup(lo, hi)
	if err != nil {
		return nil, err
	}
	// RangeLookup yields one OID per (value, OID) index entry in name
	// order, so an object hard-linked into this directory under several
	// names appears once per name, at non-adjacent positions — and the
	// name-recovery loop below already emits every matching name.
	// Sort-dedup or each link is listed twice.
	oids = index.DedupOIDs(oids)
	var out []DirEntry
	for _, oid := range oids {
		names, err := f.vol.Names(oid)
		if err != nil {
			return nil, err
		}
		for _, tv := range names {
			if tv.Tag != pdirTag {
				continue
			}
			val := tv.Value
			i := indexByte(val, 0x00)
			if i < 0 || string(val[:i]) != c {
				continue
			}
			m, err := f.vol.OSD.Stat(oid)
			if err != nil {
				return nil, err
			}
			out = append(out, DirEntry{Name: string(val[i+1:]), OID: oid, Meta: m})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// Link creates an additional POSIX name (hard link) for an existing file:
// "a data item may have many names, all equally useful and even equally
// used."
func (f *FS) Link(oldPath, newPath string) error {
	oc, err := clean(oldPath)
	if err != nil {
		return err
	}
	nc, err := clean(newPath)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m, err := f.statPath(oc)
	if err != nil {
		return err
	}
	if m.Mode&osd.ModeDir != 0 {
		return fmt.Errorf("%s: %w", oc, ErrCrossLink)
	}
	dir, name := split(nc)
	if _, err := f.requireDir(dir); err != nil {
		return err
	}
	if _, err := f.lookup(nc); err == nil {
		return fmt.Errorf("%s: %w", nc, ErrExist)
	}
	return f.link(m.OID, dir, name, nc)
}

// Remove unlinks a file or empty directory. The object is destroyed when
// its last name disappears.
func (f *FS) Remove(p string) error {
	c, err := clean(p)
	if err != nil {
		return err
	}
	if c == "/" {
		return fmt.Errorf("/: %w", ErrInvalid)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	oid, err := f.lookup(c)
	if err != nil {
		return err
	}
	m, err := f.vol.OSD.Stat(oid)
	if err != nil {
		return err
	}
	if m.Mode&osd.ModeDir != 0 {
		entries, err := f.ReadDir(c)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return fmt.Errorf("%s: %w", c, ErrNotEmpty)
		}
	}
	dir, name := split(c)
	if err := f.unlink(oid, dir, name, c); err != nil {
		return err
	}
	// Reclaim when the last POSIX name is gone (other tags — USER, UDEF —
	// keep the object alive: naming is separate from access).
	return f.maybeReclaim(oid)
}

func (f *FS) maybeReclaim(oid core.OID) error {
	names, err := f.vol.Names(oid)
	if err != nil {
		return err
	}
	for _, tv := range names {
		if tv.Tag == index.TagPOSIX {
			return nil // still linked somewhere
		}
	}
	if len(names) > 0 {
		return nil // named by non-POSIX tags; keep
	}
	return f.vol.DeleteObject(oid)
}

// RemoveAll removes p and, recursively, any children.
func (f *FS) RemoveAll(p string) error {
	c, err := clean(p)
	if err != nil {
		return err
	}
	m, err := f.statPath(c)
	if errors.Is(err, ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if m.Mode&osd.ModeDir != 0 {
		entries, err := f.ReadDir(c)
		if err != nil {
			return err
		}
		for _, e := range entries {
			childPath := c + "/" + e.Name
			if c == "/" {
				childPath = "/" + e.Name
			}
			if err := f.RemoveAll(childPath); err != nil {
				return err
			}
		}
	}
	if c == "/" {
		return nil
	}
	return f.Remove(c)
}

// Rename moves a file or directory subtree. Renaming a directory rewrites
// the POSIX names of every descendant — the honest cost of full-path keys,
// measured in the experiments.
func (f *FS) Rename(oldPath, newPath string) error {
	oc, err := clean(oldPath)
	if err != nil {
		return err
	}
	nc, err := clean(newPath)
	if err != nil {
		return err
	}
	if oc == "/" || nc == "/" {
		return fmt.Errorf("rename root: %w", ErrInvalid)
	}
	if nc == oc {
		return nil
	}
	if strings.HasPrefix(nc, oc+"/") {
		return fmt.Errorf("rename into own subtree: %w", ErrInvalid)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	oid, err := f.lookup(oc)
	if err != nil {
		return err
	}
	m, err := f.vol.OSD.Stat(oid)
	if err != nil {
		return err
	}
	ndir, nname := split(nc)
	if _, err := f.requireDir(ndir); err != nil {
		return err
	}
	if existing, err := f.lookup(nc); err == nil {
		// Target exists: only allow replacing a non-directory.
		em, err := f.vol.OSD.Stat(existing)
		if err != nil {
			return err
		}
		if em.Mode&osd.ModeDir != 0 {
			return fmt.Errorf("%s: %w", nc, ErrExist)
		}
		edir, ename := split(nc)
		if err := f.unlink(existing, edir, ename, nc); err != nil {
			return err
		}
		if err := f.maybeReclaim(existing); err != nil {
			return err
		}
	}
	odir, oname := split(oc)
	if err := f.unlink(oid, odir, oname, oc); err != nil {
		return err
	}
	if err := f.link(oid, ndir, nname, nc); err != nil {
		return err
	}
	if m.Mode&osd.ModeDir != 0 {
		return f.renameSubtree(oc, nc)
	}
	return nil
}

// renameSubtree rewrites descendant names after a directory move.
// Children's PDIR entries still reference oldDir; move them and recurse.
func (f *FS) renameSubtree(oldDir, newDir string) error {
	st, err := f.vol.Registry().Get(pdirTag)
	if err != nil {
		return err
	}
	ranged := st.(index.Ranged)
	lo := append([]byte(oldDir), 0x00)
	hi := append([]byte(oldDir), 0x01)
	oids, err := ranged.RangeLookup(lo, hi)
	if err != nil {
		return err
	}
	// RangeLookup yields one OID per (value, OID) index entry in name
	// order, so an object hard-linked under several names in the moved
	// directory appears once per name — and the name loop below already
	// moves every matching link. Sort-dedup, as ReadDir does, or each
	// multi-linked child is re-processed per link (its directory subtree
	// re-walked once per extra name).
	oids = index.DedupOIDs(oids)
	for _, oid := range oids {
		names, err := f.vol.Names(oid)
		if err != nil {
			return err
		}
		for _, tv := range names {
			if tv.Tag != pdirTag {
				continue
			}
			i := indexByte(tv.Value, 0x00)
			if i < 0 || string(tv.Value[:i]) != oldDir {
				continue
			}
			name := string(tv.Value[i+1:])
			oldFull := oldDir + "/" + name
			newFull := newDir + "/" + name
			if oldDir == "/" {
				oldFull = "/" + name
			}
			if newDir == "/" {
				newFull = "/" + name
			}
			if err := f.unlink(oid, oldDir, name, oldFull); err != nil {
				return err
			}
			if err := f.link(oid, newDir, name, newFull); err != nil {
				return err
			}
			m, err := f.vol.OSD.Stat(oid)
			if err != nil {
				return err
			}
			if m.Mode&osd.ModeDir != 0 {
				if err := f.renameSubtree(oldFull, newFull); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Truncate sets a file's size.
func (f *FS) Truncate(p string, size uint64) error {
	file, err := f.OpenRW(p)
	if err != nil {
		return err
	}
	defer file.Close()
	return file.obj.Truncate(size)
}

// Chmod updates permission bits, preserving the type bits.
func (f *FS) Chmod(p string, perm uint32) error {
	m, err := f.Stat(p)
	if err != nil {
		return err
	}
	return f.vol.OSD.SetMode(m.OID, (m.Mode&^osd.ModePermMask)|(perm&osd.ModePermMask))
}

// Chtimes updates access and modification times (unix nanoseconds).
func (f *FS) Chtimes(p string, atime, mtime time.Time) error {
	m, err := f.Stat(p)
	if err != nil {
		return err
	}
	return f.vol.OSD.SetTimes(m.OID, atime.UnixNano(), mtime.UnixNano())
}

// WriteFile creates p with the given contents.
func (f *FS) WriteFile(p string, data []byte, perm uint32) error {
	file, err := f.Create(p, perm)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// ReadFile returns the contents of p.
func (f *FS) ReadFile(p string) ([]byte, error) {
	file, err := f.Open(p)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	m, err := file.obj.Stat()
	if err != nil {
		return nil, err
	}
	if m.Mode&osd.ModeDir != 0 {
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	out := make([]byte, file.obj.Size())
	if len(out) == 0 {
		return out, nil
	}
	if _, err := file.obj.ReadAt(out, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return out, nil
}
