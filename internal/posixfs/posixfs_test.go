package posixfs

import (
	"archive/tar"
	"bytes"
	"errors"
	"io"
	iofs "io/fs"
	"reflect"
	"testing"
	"testing/fstest"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/index"
)

func newFS(t *testing.T) (*FS, *core.Volume) {
	t.Helper()
	dev := blockdev.NewMem(32768, blockdev.DefaultBlockSize)
	vol, err := core.Create(dev, core.Options{})
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	fs, err := New(vol)
	if err != nil {
		t.Fatalf("New FS: %v", err)
	}
	return fs, vol
}

func TestCreateWriteReadFile(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/hello.txt", []byte("hello hFAD"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello hFAD" {
		t.Errorf("ReadFile = %q", got)
	}
	m, err := fs.Stat("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 10 {
		t.Errorf("Size = %d", m.Size)
	}
}

func TestMkdirAndReadDir(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/docs", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/b.txt", []byte("b"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/docs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a.txt" || entries[1].Name != "b.txt" {
		t.Errorf("ReadDir = %+v", entries)
	}
	// Root listing contains /docs.
	rootEntries, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rootEntries) != 1 || rootEntries[0].Name != "docs" {
		t.Errorf("root ReadDir = %+v", rootEntries)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/a/b", 0o755); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir missing parent = %v", err)
	}
	if err := fs.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir existing = %v", err)
	}
	if err := fs.WriteFile("/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/f/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdir under file = %v", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/x/y/z", 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := fs.Stat("/x/y/z")
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode&0o40000 == 0 {
		t.Error("z is not a directory")
	}
	// Idempotent.
	if err := fs.MkdirAll("/x/y/z", 0o755); err != nil {
		t.Errorf("repeat MkdirAll = %v", err)
	}
}

func TestFileSeekReadWrite(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("/seek.bin", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "234" {
		t.Errorf("read after seek = %q", buf)
	}
	if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
		t.Errorf("SeekEnd = %d", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 9 {
		t.Errorf("SeekCurrent = %d", pos)
	}
	if _, err := f.Seek(-100, io.SeekStart); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative seek = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); !errors.Is(err, ErrInvalid) {
		t.Errorf("read after close = %v", err)
	}
}

func TestInsertAndTruncateRangeThroughPOSIX(t *testing.T) {
	fs, _ := newFS(t)
	f, err := fs.Create("/doc.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(5, []byte(" brave new")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/doc.txt")
	if string(got) != "hello brave new world" {
		t.Errorf("after insert: %q", got)
	}
	f2, err := fs.OpenRW("/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.TruncateRange(5, 10); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	got, _ = fs.ReadFile("/doc.txt")
	if string(got) != "hello world" {
		t.Errorf("after truncate-range: %q", got)
	}
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/ro.txt", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/ro.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrInvalid) {
		t.Errorf("write on read-only = %v", err)
	}
}

func TestHardLinks(t *testing.T) {
	fs, vol := newFS(t)
	if err := fs.WriteFile("/original", []byte("shared bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/original", "/alias"); err != nil {
		t.Fatal(err)
	}
	// Same object behind both names.
	m1, _ := fs.Stat("/original")
	m2, _ := fs.Stat("/alias")
	if m1.OID != m2.OID {
		t.Fatalf("link points at different object: %d vs %d", m1.OID, m2.OID)
	}
	// Write through one name, read through the other.
	f, err := fs.OpenRW("/alias")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("SHARED"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := fs.ReadFile("/original")
	if string(got) != "SHARED bytes" {
		t.Errorf("through original: %q", got)
	}
	// Removing one name keeps the object; removing both reclaims it.
	if err := fs.Remove("/original"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/alias"); err != nil {
		t.Errorf("alias lost after removing original: %v", err)
	}
	if err := fs.Remove("/alias"); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.OSD.Stat(m1.OID); err == nil {
		t.Error("object not reclaimed after last unlink")
	}
	// Directories cannot be hard-linked.
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/d", "/d2"); !errors.Is(err, ErrCrossLink) {
		t.Errorf("dir link = %v", err)
	}
}

func TestNonPosixNamesKeepObjectAlive(t *testing.T) {
	fs, vol := newFS(t)
	if err := fs.WriteFile("/tagged", []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _ := fs.Stat("/tagged")
	if err := vol.AddName(m.OID, index.TagUDef, []byte("important")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/tagged"); err != nil {
		t.Fatal(err)
	}
	// Path is gone but the object survives, reachable by tag.
	if _, err := fs.Stat("/tagged"); !errors.Is(err, ErrNotExist) {
		t.Error("path still resolves")
	}
	ids, err := vol.Resolve(core.TV("UDEF", "important"))
	if err != nil || len(ids) != 1 || ids[0] != m.OID {
		t.Errorf("tag resolve = %v, %v", ids, err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/dir/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/dir"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir = %v", err)
	}
	if err := fs.Remove("/dir/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/gone"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing = %v", err)
	}
	if err := fs.Remove("/"); !errors.Is(err, ErrInvalid) {
		t.Errorf("remove root = %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs, _ := newFS(t)
	for _, p := range []string{"/t/a/b", "/t/c"} {
		if err := fs.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/t/a/b/deep.txt", []byte("d"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/t"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/t"); !errors.Is(err, ErrNotExist) {
		t.Error("subtree survived RemoveAll")
	}
	if err := fs.RemoveAll("/missing"); err != nil {
		t.Errorf("RemoveAll missing = %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/old.txt", []byte("contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old.txt", "/sub/new.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/old.txt"); !errors.Is(err, ErrNotExist) {
		t.Error("old path survives")
	}
	got, err := fs.ReadFile("/sub/new.txt")
	if err != nil || string(got) != "contents" {
		t.Errorf("new path = %q, %v", got, err)
	}
	// Rename onto an existing file replaces it.
	if err := fs.WriteFile("/other", []byte("loser"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/sub/new.txt", "/other"); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/other")
	if string(got) != "contents" {
		t.Errorf("replaced = %q", got)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/proj/src/pkg", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/proj/src/pkg/main.go", []byte("package main"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/proj/readme", []byte("readme"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/proj", "/project"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/project/src/pkg/main.go")
	if err != nil || string(got) != "package main" {
		t.Errorf("deep path after rename = %q, %v", got, err)
	}
	if _, err := fs.Stat("/proj/readme"); !errors.Is(err, ErrNotExist) {
		t.Error("old subtree path survives")
	}
	entries, _ := fs.ReadDir("/project")
	if len(entries) != 2 {
		t.Errorf("renamed dir entries = %+v", entries)
	}
	// Invalid renames.
	if err := fs.Rename("/project", "/project/self"); !errors.Is(err, ErrInvalid) {
		t.Errorf("rename into self = %v", err)
	}
	if err := fs.Rename("/", "/x"); !errors.Is(err, ErrInvalid) {
		t.Errorf("rename root = %v", err)
	}
}

// TestRenameSubtreeHardLinks: a file hard-linked under two names inside a
// moved directory appears once per name in the PDIR range lookup;
// renameSubtree must dedup the OIDs (as ReadDir does) and still move
// every link exactly once.
func TestRenameSubtreeHardLinks(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/sub/a", []byte("linked"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/d/sub/a", "/d/sub/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d", "/e"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/e/sub/a", "/e/sub/b"} {
		got, err := fs.ReadFile(p)
		if err != nil || string(got) != "linked" {
			t.Errorf("ReadFile(%s) = %q, %v", p, got, err)
		}
	}
	entries, err := fs.ReadDir("/e/sub")
	if err != nil || len(entries) != 2 {
		t.Errorf("ReadDir after rename = %+v, %v", entries, err)
	}
	if _, err := fs.Stat("/d/sub/a"); !errors.Is(err, ErrNotExist) {
		t.Error("old link survives rename")
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/f", []byte("long original content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "new" {
		t.Errorf("after re-create = %q", got)
	}
}

func TestChmodChtimes(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/f", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod("/f", 0o755); err != nil {
		t.Fatal(err)
	}
	m, _ := fs.Stat("/f")
	if m.Mode&0o7777 != 0o755 {
		t.Errorf("mode = %o", m.Mode&0o7777)
	}
	if m.Mode&0o100000 == 0 {
		t.Error("chmod clobbered the type bits")
	}
}

func TestPathCleaning(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("/a.txt", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a.txt", "a.txt", "//a.txt", "/./a.txt", "/sub/../a.txt"} {
		if _, err := fs.Stat(p); err != nil {
			t.Errorf("Stat(%q) = %v", p, err)
		}
	}
}

func TestIOFSConformance(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/dir/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"/top.txt":       "top level",
		"/dir/mid.txt":   "middle",
		"/dir/sub/lo.go": "package lo",
	}
	for p, content := range files {
		if err := fs.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := fstest.TestFS(fs.IOFS(), "top.txt", "dir/mid.txt", "dir/sub/lo.go"); err != nil {
		t.Fatalf("fstest.TestFS: %v", err)
	}
}

func TestWalkDirOverVolume(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/w/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w/a/1.txt", []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w/2.txt", []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	var visited []string
	err := iofs.WalkDir(fs.IOFS(), ".", func(p string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		visited = append(visited, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".", "w", "w/2.txt", "w/a", "w/a/1.txt"}
	if len(visited) != len(want) {
		t.Fatalf("WalkDir visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Errorf("visited[%d] = %q, want %q", i, visited[i], want[i])
		}
	}
}

// TestTarOverVolume archives an hFAD volume with the stdlib tar writer —
// the introduction's "tools that could operate on application data
// without knowing about its internals".
func TestTarOverVolume(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.MkdirAll("/photos", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/photos/trip.jpg", bytes.Repeat([]byte("JPEG"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/notes.txt", []byte("remember the milk"), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := iofs.WalkDir(fs.IOFS(), ".", func(p string, d iofs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = p
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		data, err := iofs.ReadFile(fs.IOFS(), p)
		if err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// Read the archive back and verify contents.
	tr := tar.NewReader(&buf)
	found := map[string]int64{}
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		found[hdr.Name] = hdr.Size
	}
	if found["notes.txt"] != 17 || found["photos/trip.jpg"] != 400 {
		t.Errorf("archive contents = %v", found)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := blockdev.NewMem(32768, blockdev.DefaultBlockSize)
	vol, err := core.Create(dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(vol)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c.txt", []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vol.Close(); err != nil {
		t.Fatal(err)
	}

	vol2, err := core.Open(dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := New(vol2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/a/b/c.txt")
	if err != nil || string(got) != "durable" {
		t.Errorf("reopened = %q, %v", got, err)
	}
}

func TestFsckAfterHeavyNamespaceChurn(t *testing.T) {
	fs, vol := newFS(t)
	if err := fs.MkdirAll("/churn/x", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := "/churn/x/f" + string(rune('a'+i%26))
		if err := fs.WriteFile(p, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := fs.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Rename("/churn/x", "/churn/y"); err != nil {
		t.Fatal(err)
	}
	rep, err := vol.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("fsck: %v", rep.Problems)
	}
}

// TestReadDirHardLinkNoDuplicates: an object hard-linked into the same
// directory under two names must list each name exactly once (regression:
// the PDIR range lookup yields the OID once per name, and the
// name-recovery loop then emitted every name per occurrence — listing
// both links twice). The interleaving file makes the duplicate OIDs
// non-adjacent in the name-ordered range result, so adjacent-only
// deduplication also fails this test.
func TestReadDirHardLinkNoDuplicates(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/aaa", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/bbb", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Link aaa as ccc: the PDIR range now yields aaa's OID at positions
	// 0 ("aaa") and 2 ("ccc"), with bbb's in between.
	if err := fs.Link("/d/aaa", "/d/ccc"); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	want := []string{"aaa", "bbb", "ccc"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
}
