package workload

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := MediaLibrary(42, MediaLibraryConfig{Photos: 50})
	b := MediaLibrary(42, MediaLibraryConfig{Photos: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := MediaLibrary(43, MediaLibraryConfig{Photos: 50})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical libraries")
	}
}

func TestMediaLibraryShape(t *testing.T) {
	lib := MediaLibrary(7, MediaLibraryConfig{Photos: 1000, People: 10, Places: 5})
	if len(lib) != 1000 {
		t.Fatalf("photos = %d", len(lib))
	}
	persons := map[string]int{}
	for _, p := range lib {
		persons[p.Person]++
		if !strings.HasPrefix(p.Dir, "/photos/2") {
			t.Fatalf("dir = %q", p.Dir)
		}
		if p.Size < 4<<10 || p.Size > 256<<10 {
			t.Fatalf("size = %d out of clamp", p.Size)
		}
		if len(p.Date) != 10 || p.Date[4] != '-' {
			t.Fatalf("date = %q", p.Date)
		}
		if p.Path() != p.Dir+"/"+p.Name {
			t.Fatal("Path() broken")
		}
	}
	if len(persons) < 3 {
		t.Errorf("only %d distinct people", len(persons))
	}
	// Zipf skew: the most common person appears much more than the rarest.
	max, min := 0, 1<<30
	for _, n := range persons {
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max < 4*min {
		t.Errorf("person distribution not skewed: max=%d min=%d", max, min)
	}
}

func TestDocCorpus(t *testing.T) {
	docs := DocCorpus(11, DocCorpusConfig{Docs: 100})
	if len(docs) != 100 {
		t.Fatal("wrong count")
	}
	if !strings.Contains(docs[0].Text, "marker0") {
		t.Error("doc 0 missing marker")
	}
	if strings.Contains(docs[1].Text, "marker1 ") {
		t.Error("doc 1 should not carry a marker")
	}
	if len(strings.Fields(docs[5].Text)) < 100 {
		t.Errorf("doc too short: %d words", len(strings.Fields(docs[5].Text)))
	}
}

func TestPathTree(t *testing.T) {
	tree := NewPathTree(3, 3, 4)
	wantDirs := 4 + 16 + 64
	if len(tree.Dirs) != wantDirs {
		t.Errorf("dirs = %d, want %d", len(tree.Dirs), wantDirs)
	}
	if len(tree.Leaves) != 64 {
		t.Errorf("leaves = %d, want 64", len(tree.Leaves))
	}
	// Parents precede children.
	seen := map[string]bool{"": true}
	for _, d := range tree.Dirs {
		parent := d[:strings.LastIndex(d, "/")]
		if !seen[parent] {
			t.Fatalf("dir %q appears before its parent", d)
		}
		seen[d] = true
	}
	for _, l := range tree.Leaves {
		if strings.Count(l, "/") != 4 { // 3 dirs + file
			t.Errorf("leaf depth wrong: %q", l)
		}
	}
}

func TestDeepPath(t *testing.T) {
	dirs, file := DeepPath(5, 16)
	if len(dirs) != 16 {
		t.Fatalf("dirs = %d", len(dirs))
	}
	if strings.Count(file, "/") != 17 {
		t.Errorf("file depth = %d: %q", strings.Count(file, "/"), file)
	}
	if !strings.HasPrefix(file, dirs[len(dirs)-1]+"/") {
		t.Error("file not under deepest dir")
	}
}

func TestLognormalClamp(t *testing.T) {
	r := NewRng(3)
	for i := 0; i < 1000; i++ {
		v := r.Lognormal(10, 2, 100, 5000)
		if v < 100 || v > 5000 {
			t.Fatalf("lognormal %d out of clamp", v)
		}
	}
}

func TestBytesDeterministic(t *testing.T) {
	a := NewRng(9).Bytes(100)
	b := NewRng(9).Bytes(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
	if len(a) != 100 {
		t.Fatal("wrong length")
	}
}

// TestZipfPinned pins the exact first draws of the Zipf sampler for a
// fixed seed: the E17 scale-tier run is only reproducible across hosts
// and PRs if the generator's byte-for-byte output never drifts.
func TestZipfPinned(t *testing.T) {
	z := NewRng(17).NewZipf(100000)
	want := []uint64{406, 69, 22, 3, 1, 237, 3, 27861, 45551, 1003, 221, 1}
	for i, w := range want {
		if got := z.Next(); got != w {
			t.Fatalf("draw %d = %d, want %d (zipf sequence drifted)", i, got, w)
		}
	}
}

// TestMixPinned pins the exact first (kind, rank) pairs of the mixed-op
// generator for a fixed seed and the default 60/30/10 config.
func TestMixPinned(t *testing.T) {
	m := NewMix(17, 100000, MixConfig{})
	want := []struct {
		k OpKind
		r uint64
	}{
		{1, 69}, {1, 3}, {1, 237}, {0, 27861}, {0, 1003}, {0, 1},
		{1, 85738}, {1, 5}, {1, 688}, {0, 27}, {0, 63620}, {0, 7},
	}
	for i, w := range want {
		k, r := m.Next()
		if k != w.k || r != w.r {
			t.Fatalf("op %d = (%v, %d), want (%v, %d) (mix sequence drifted)", i, k, r, w.k, w.r)
		}
	}
}

// TestMixRatiosAndSkew checks the op-kind mix tracks its configured
// weights and the object ranks carry web-like Zipf skew: the hottest 1%
// of a 50k-object population should absorb well over half the traffic.
func TestMixRatiosAndSkew(t *testing.T) {
	const draws = 200000
	m := NewMix(99, 50000, MixConfig{})
	var counts [3]int
	hot := 0
	for i := 0; i < draws; i++ {
		k, r := m.Next()
		counts[k]++
		if r < 500 {
			hot++
		}
	}
	check := func(kind OpKind, weight float64) {
		frac := float64(counts[kind]) / draws
		if frac < weight-0.02 || frac > weight+0.02 {
			t.Errorf("%v fraction %.3f, want %.2f ± 0.02", kind, frac, weight)
		}
	}
	check(OpRead, 0.60)
	check(OpWrite, 0.30)
	check(OpQuery, 0.10)
	if frac := float64(hot) / draws; frac < 0.5 {
		t.Errorf("top-1%% ranks drew only %.3f of traffic; zipf skew lost", frac)
	}
}

// TestMixDeterminism: two generators with the same seed emit identical
// streams; a different seed diverges.
func TestMixDeterminism(t *testing.T) {
	a := NewMix(7, 1000, MixConfig{Reads: 1, Writes: 1, Queries: 1})
	b := NewMix(7, 1000, MixConfig{Reads: 1, Writes: 1, Queries: 1})
	c := NewMix(8, 1000, MixConfig{Reads: 1, Writes: 1, Queries: 1})
	diverged := false
	for i := 0; i < 5000; i++ {
		ak, ar := a.Next()
		bk, br := b.Next()
		ck, cr := c.Next()
		if ak != bk || ar != br {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if ak != ck || ar != cr {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical streams")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRng(1)
	z := r.NewZipf(100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[50]*2 {
		t.Errorf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}
