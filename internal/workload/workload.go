// Package workload provides the deterministic generators behind the
// experiment suite: media libraries with attribute tags (the paper's
// motivating photo/video/audio management workload), document corpora with
// Zipfian vocabulary, path trees of controlled depth and fanout, and
// lognormal file sizes. Every generator is seeded, so experiment shapes
// reproduce exactly across runs and hosts.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// Rng is the deterministic random source for a generator.
type Rng struct{ *rand.Rand }

// NewRng returns a seeded generator.
func NewRng(seed uint64) Rng {
	return Rng{rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))}
}

// Lognormal samples a lognormal value with the given log-space mean and
// sigma, clamped to [min, max]. File sizes in real systems are
// approximately lognormal.
func (r Rng) Lognormal(mu, sigma float64, min, max int) int {
	v := int(math.Exp(r.NormFloat64()*sigma + mu))
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// syllables for pronounceable, deterministic names.
var syllables = []string{
	"ka", "ri", "to", "mu", "sa", "lo", "ve", "na", "pi", "dor",
	"mel", "tak", "shi", "run", "bel", "cor", "dan", "fel", "gor", "hul",
}

// Word produces a pronounceable word of n syllables.
func (r Rng) Word(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[r.IntN(len(syllables))])
	}
	return b.String()
}

// Bytes fills a deterministic pseudo-random buffer of length n.
func (r Rng) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// Zipf draws ranks in [0, n) with exponent s ≈ 1.07 (web-like skew).
type Zipf struct{ z *rand.Zipf }

// NewZipf builds a Zipf sampler over n items using r.
func (r Rng) NewZipf(n uint64) Zipf {
	return Zipf{rand.NewZipf(r.Rand, 1.07, 1, n-1)}
}

// Next returns the next rank.
func (z Zipf) Next() uint64 { return z.z.Uint64() }

// --- mixed-op streams (the serving workload behind experiment E17) ---

// OpKind is one operation class in a mixed serving workload.
type OpKind uint8

// Mixed-workload operation kinds.
const (
	OpRead  OpKind = iota // read an existing object's bytes
	OpWrite               // append to an existing object
	OpQuery               // paginated tag query
)

// String names the kind for tables and logs.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpQuery:
		return "query"
	default:
		return "?"
	}
}

// MixConfig weights a mixed read/write/query stream. Weights are
// relative; zero values fall back to the 60/30/10 serving default.
type MixConfig struct {
	Reads   int
	Writes  int
	Queries int
}

func (c *MixConfig) fill() {
	if c.Reads == 0 && c.Writes == 0 && c.Queries == 0 {
		c.Reads, c.Writes, c.Queries = 60, 30, 10
	}
}

// Mix generates a deterministic stream of (operation, object-rank)
// pairs: op kinds drawn with MixConfig's weights, target objects drawn
// Zipf-distributed over [0, objects) — the skewed mixed load a serving
// tier sees, reproducible from its seed.
type Mix struct {
	rng     Rng
	zipf    Zipf
	objects uint64
	rw, wq  uint64 // cumulative weight thresholds
	total   uint64
}

// NewMix builds a mixed-op generator over the given object population.
func NewMix(seed uint64, objects uint64, cfg MixConfig) *Mix {
	cfg.fill()
	if objects < 2 {
		objects = 2
	}
	r := NewRng(seed)
	return &Mix{
		rng:     r,
		zipf:    r.NewZipf(objects),
		objects: objects,
		rw:      uint64(cfg.Reads),
		wq:      uint64(cfg.Reads + cfg.Writes),
		total:   uint64(cfg.Reads + cfg.Writes + cfg.Queries),
	}
}

// Next returns the next operation kind and its Zipf-distributed object
// rank (hot objects have low ranks). Query ops use the rank to pick a
// query bucket rather than a single object.
func (m *Mix) Next() (OpKind, uint64) {
	w := m.rng.Uint64N(m.total)
	rank := m.zipf.Next()
	switch {
	case w < m.rw:
		return OpRead, rank
	case w < m.wq:
		return OpWrite, rank
	default:
		return OpQuery, rank
	}
}

// --- media library (the paper's §1 motivating workload) ---

// Photo is one item in a generated media library.
type Photo struct {
	Name   string // base file name
	Dir    string // hierarchical home ("/photos/<year>/<month>")
	Person string // who is in it
	Place  string // where it was taken
	Date   string // when (sortable YYYY-MM-DD)
	Camera string
	Size   int // content bytes
}

// Path returns the photo's hierarchical path.
func (p Photo) Path() string { return p.Dir + "/" + p.Name }

// MediaLibraryConfig sizes the generator.
type MediaLibraryConfig struct {
	Photos  int
	People  int // distinct persons (zipf-distributed appearance)
	Places  int
	Cameras int
	Years   int // date span starting 2000
	MinSize int // content size clamp (default 4 KiB)
	MaxSize int // default 256 KiB
}

func (c *MediaLibraryConfig) fill() {
	if c.People == 0 {
		c.People = 20
	}
	if c.Places == 0 {
		c.Places = 12
	}
	if c.Cameras == 0 {
		c.Cameras = 5
	}
	if c.Years == 0 {
		c.Years = 9
	}
	if c.MinSize == 0 {
		c.MinSize = 4 << 10
	}
	if c.MaxSize == 0 {
		c.MaxSize = 256 << 10
	}
}

// MediaLibrary generates a deterministic photo library. Persons and
// places are Zipf-distributed (some people appear in most photos), dates
// are uniform over the span, and photos land in /photos/<year>/<month>
// directories — the "canonical hierarchy" a user might pick, which the
// attribute queries then cut across.
func MediaLibrary(seed uint64, cfg MediaLibraryConfig) []Photo {
	cfg.fill()
	r := NewRng(seed)
	people := make([]string, cfg.People)
	for i := range people {
		people[i] = "person-" + r.Word(2)
	}
	places := make([]string, cfg.Places)
	for i := range places {
		places[i] = "place-" + r.Word(2)
	}
	cameras := make([]string, cfg.Cameras)
	for i := range cameras {
		cameras[i] = "cam-" + r.Word(1)
	}
	personZ := r.NewZipf(uint64(cfg.People))
	placeZ := r.NewZipf(uint64(cfg.Places))

	out := make([]Photo, cfg.Photos)
	for i := range out {
		year := 2000 + r.IntN(cfg.Years)
		month := 1 + r.IntN(12)
		day := 1 + r.IntN(28)
		out[i] = Photo{
			Name:   fmt.Sprintf("img_%06d.jpg", i),
			Dir:    fmt.Sprintf("/photos/%04d/%02d", year, month),
			Person: people[personZ.Next()],
			Place:  places[placeZ.Next()],
			Date:   fmt.Sprintf("%04d-%02d-%02d", year, month, day),
			Camera: cameras[r.IntN(cfg.Cameras)],
			Size:   r.Lognormal(10.5, 1.0, cfg.MinSize, cfg.MaxSize),
		}
	}
	return out
}

// --- document corpus ---

// Document is one generated text document.
type Document struct {
	Name string
	Text string
}

// DocCorpusConfig sizes the corpus generator.
type DocCorpusConfig struct {
	Docs      int
	Vocab     int // distinct words (zipf-distributed usage)
	WordsPer  int // words per document
	RareEvery int // every k-th doc gets a unique marker word (default 10)
}

func (c *DocCorpusConfig) fill() {
	if c.Vocab == 0 {
		c.Vocab = 2000
	}
	if c.WordsPer == 0 {
		c.WordsPer = 120
	}
	if c.RareEvery == 0 {
		c.RareEvery = 10
	}
}

// DocCorpus generates documents whose word frequencies follow a Zipf
// distribution, mimicking natural text; every RareEvery-th document also
// contains a unique marker term ("markerN") for needle queries.
func DocCorpus(seed uint64, cfg DocCorpusConfig) []Document {
	cfg.fill()
	r := NewRng(seed)
	vocab := make([]string, cfg.Vocab)
	for i := range vocab {
		vocab[i] = r.Word(2 + i%3)
	}
	z := r.NewZipf(uint64(cfg.Vocab))
	out := make([]Document, cfg.Docs)
	for i := range out {
		var b strings.Builder
		for w := 0; w < cfg.WordsPer; w++ {
			b.WriteString(vocab[z.Next()])
			b.WriteByte(' ')
		}
		if i%cfg.RareEvery == 0 {
			fmt.Fprintf(&b, "marker%d ", i)
		}
		out[i] = Document{
			Name: fmt.Sprintf("doc_%05d.txt", i),
			Text: b.String(),
		}
	}
	return out
}

// --- path trees ---

// PathTree generates a balanced directory tree of the given depth and
// fanout; Leaves returns the full paths of the leaf files (one per
// bottom-level directory).
type PathTree struct {
	Depth  int
	Fanout int
	Dirs   []string // all directories, parents before children
	Leaves []string // one file path per leaf directory
}

// NewPathTree builds a tree: depth levels of directories, fanout children
// per level, and a single file in each deepest directory.
func NewPathTree(seed uint64, depth, fanout int) *PathTree {
	t := &PathTree{Depth: depth, Fanout: fanout}
	r := NewRng(seed)
	var build func(prefix string, level int)
	build = func(prefix string, level int) {
		if level == depth {
			t.Leaves = append(t.Leaves, prefix+"/file-"+r.Word(2)+".dat")
			return
		}
		for i := 0; i < fanout; i++ {
			dir := fmt.Sprintf("%s/d%d-%s", prefix, i, r.Word(1))
			t.Dirs = append(t.Dirs, dir)
			build(dir, level+1)
		}
	}
	build("", 0)
	return t
}

// DeepPath generates a single chain of depth directories ending in one
// file: the worst case for component-at-a-time resolution.
func DeepPath(seed uint64, depth int) (dirs []string, file string) {
	r := NewRng(seed)
	prefix := ""
	for i := 0; i < depth; i++ {
		prefix = fmt.Sprintf("%s/lvl%02d-%s", prefix, i, r.Word(1))
		dirs = append(dirs, prefix)
	}
	return dirs, prefix + "/target.dat"
}
