package hfad_test

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/hfad"
)

func newStore(t *testing.T, opts hfad.Options) *hfad.Store {
	t.Helper()
	st, err := hfad.Create(hfad.NewMemDevice(1<<15), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return st
}

func TestPublicQuickstartFlow(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()

	obj, err := st.CreateObject("margo")
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append([]byte("the quick brown fox")); err != nil {
		t.Fatal(err)
	}
	if err := st.Tag(obj.OID(), hfad.TagUDef, "notes"); err != nil {
		t.Fatal(err)
	}
	if err := st.IndexContent(obj.OID()); err != nil {
		t.Fatal(err)
	}
	ids, err := st.Find(hfad.TV(hfad.TagFulltext, "quick"), hfad.TV(hfad.TagUDef, "notes"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []hfad.OID{obj.OID()}) {
		t.Errorf("Find = %v", ids)
	}
	// FastPath by ID tag.
	oid, err := st.FindOne(hfad.TV(hfad.TagID, "1"))
	if err != nil || oid != obj.OID() {
		t.Errorf("FindOne(ID) = %v, %v", oid, err)
	}
}

func TestInsertTruncateThroughPublicAPI(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	obj, err := st.CreateObject("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Append([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := obj.InsertAt(5, []byte(" there,")); err != nil {
		t.Fatal(err)
	}
	if err := obj.TruncateRange(0, 6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, obj.Size())
	if _, err := obj.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "there, world" {
		t.Errorf("content = %q", buf)
	}
}

func TestPosixViewAndTagsCoexist(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	pfs, err := st.POSIX()
	if err != nil {
		t.Fatal(err)
	}
	if err := pfs.MkdirAll("/music/jazz", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := pfs.WriteFile("/music/jazz/take5.flac", []byte("audio bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := pfs.Stat("/music/jazz/take5.flac")
	if err != nil {
		t.Fatal(err)
	}
	// Tag the same object and find it both ways.
	if err := st.Tag(m.OID, hfad.TagUDef, "genre:jazz"); err != nil {
		t.Fatal(err)
	}
	byTag, err := st.Find(hfad.TV(hfad.TagUDef, "genre:jazz"))
	if err != nil || len(byTag) != 1 || byTag[0] != m.OID {
		t.Errorf("by tag = %v, %v", byTag, err)
	}
	byPath, err := st.Find(hfad.TV(hfad.TagPOSIX, "/music/jazz/take5.flac"))
	if err != nil || len(byPath) != 1 || byPath[0] != m.OID {
		t.Errorf("by path = %v, %v", byPath, err)
	}
}

func TestQueryTreePublic(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	a, _ := st.CreateObject("u")
	b, _ := st.CreateObject("u")
	_ = st.Tag(a.OID(), hfad.TagUDef, "x")
	_ = st.Tag(a.OID(), hfad.TagUDef, "y")
	_ = st.Tag(b.OID(), hfad.TagUDef, "x")
	ids, err := st.Query(hfad.And{Kids: []hfad.Query{
		hfad.Term{Tag: hfad.TagUDef, Value: []byte("x")},
		hfad.Not{Kid: hfad.Term{Tag: hfad.TagUDef, Value: []byte("y")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []hfad.OID{b.OID()}) {
		t.Errorf("query = %v", ids)
	}
}

func TestSearchRefinementPublic(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	obj, _ := st.CreateObject("u")
	_ = st.Tag(obj.OID(), hfad.TagUDef, "k")
	s := st.NewSearch().Refine(hfad.Term{Tag: hfad.TagUDef, Value: []byte("k")})
	ids, err := s.Results()
	if err != nil || len(ids) != 1 {
		t.Errorf("refined = %v, %v", ids, err)
	}
}

func TestPersistencePublic(t *testing.T) {
	dev := hfad.NewMemDevice(1 << 15)
	st, err := hfad.Create(dev, hfad.Options{Transactional: true})
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := st.CreateObject("u")
	_ = obj.Append([]byte("persisted"))
	oid := obj.OID()
	_ = st.Tag(oid, hfad.TagUser, "u")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := hfad.Open(dev, hfad.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ids, err := st2.Find(hfad.TV(hfad.TagUser, "u"))
	if err != nil || len(ids) != 1 || ids[0] != oid {
		t.Errorf("reopened Find = %v, %v", ids, err)
	}
	rep, err := st2.Check()
	if err != nil || !rep.Ok() {
		t.Errorf("fsck = %+v, %v", rep, err)
	}
}

func TestUntagAndDelete(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	obj, _ := st.CreateObject("u")
	_ = st.Tag(obj.OID(), hfad.TagUDef, "temp")
	if err := st.Untag(obj.OID(), hfad.TagUDef, "temp"); err != nil {
		t.Fatal(err)
	}
	ids, _ := st.Find(hfad.TV(hfad.TagUDef, "temp"))
	if len(ids) != 0 {
		t.Errorf("after untag = %v", ids)
	}
	if err := st.DeleteObject(obj.OID()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Stat(obj.OID()); err == nil {
		t.Error("object survived delete")
	}
}

func TestLazyIndexingPublic(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	obj, _ := st.CreateObject("u")
	_ = obj.Append([]byte("asynchronous postings"))
	st.StartLazyIndexing(16)
	if err := st.IndexContentLazy(obj.OID()); err != nil {
		t.Fatal(err)
	}
	st.WaitIndexIdle()
	ids, err := st.Find(hfad.TV(hfad.TagFulltext, "asynchronous"))
	if err != nil || len(ids) != 1 {
		t.Errorf("lazy find = %v, %v", ids, err)
	}
}

func TestOpenGarbageFails(t *testing.T) {
	if _, err := hfad.Open(hfad.NewMemDevice(256), hfad.Options{}); err == nil {
		t.Error("Open on blank device should fail")
	}
	var errNil error
	if !errors.Is(errNil, nil) {
		t.Error("sanity")
	}
}

// TestPaginationAndProfilePublic covers the streaming-engine surface:
// QueryPage / FindPage bounded results and Profile's executed plan.
func TestPaginationAndProfilePublic(t *testing.T) {
	st := newStore(t, hfad.Options{})
	defer st.Close()
	var all []hfad.OID
	for i := 0; i < 25; i++ {
		obj, err := st.CreateObject("u")
		if err != nil {
			t.Fatal(err)
		}
		oid := obj.OID()
		obj.Close()
		if err := st.Tag(oid, hfad.TagUDef, "bulk"); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := st.Tag(oid, hfad.TagUDef, "pick"); err != nil {
				t.Fatal(err)
			}
		}
		all = append(all, oid)
	}
	term := hfad.Term{Tag: hfad.TagUDef, Value: []byte("bulk")}

	// Page through everything with Limit/After.
	var walked []hfad.OID
	var after hfad.OID
	for {
		page, err := st.QueryPage(term, hfad.Page{Limit: 8, After: after})
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		walked = append(walked, page...)
		after = page[len(page)-1]
	}
	if !reflect.DeepEqual(walked, all) {
		t.Errorf("paged walk = %v, want %v", walked, all)
	}

	// FindPage bounds a naming-vector conjunction.
	page, err := st.FindPage(hfad.Page{Limit: 2}, hfad.TV(hfad.TagUDef, "bulk"), hfad.TV(hfad.TagUDef, "pick"))
	if err != nil || len(page) != 2 {
		t.Fatalf("FindPage = %v, %v", page, err)
	}

	// Profile reports the executed plan: the selective term drives, the
	// broad one is seeked.
	ids, steps, err := st.Profile(hfad.And{Kids: []hfad.Query{
		term,
		hfad.Term{Tag: hfad.TagUDef, Value: []byte("pick")},
	}}, hfad.Page{})
	if err != nil || len(ids) != 5 {
		t.Fatalf("Profile = %v, %v", ids, err)
	}
	if len(steps) != 2 || steps[0].Estimate > steps[1].Estimate {
		t.Errorf("plan not in selectivity order: %+v", steps)
	}
	if steps[1].Seeks == 0 {
		t.Errorf("broad term was not seeked: %+v", steps[1])
	}
}

func TestBatchPublicAPI(t *testing.T) {
	st, err := hfad.Create(hfad.NewMemDevice(1<<13), hfad.Options{Transactional: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var oids []hfad.OID
	err = st.Batch(func(b *hfad.Batch) error {
		for i := 0; i < 8; i++ {
			obj, err := b.CreateObject("bulk")
			if err != nil {
				return err
			}
			if err := b.Append(obj, []byte(fmt.Sprintf("bulk doc %d marker%d", i, i))); err != nil {
				return err
			}
			if err := b.Tag(obj.OID(), hfad.TagUDef, "bulk"); err != nil {
				return err
			}
			if err := b.IndexContent(obj.OID()); err != nil {
				return err
			}
			oids = append(oids, obj.OID())
			obj.Close()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	ids, err := st.Find(hfad.TV(hfad.TagUDef, "bulk"))
	if err != nil || len(ids) != 8 {
		t.Fatalf("Find = %v, %v", ids, err)
	}
	ids, err = st.Find(hfad.TV(hfad.TagFulltext, "marker5"), hfad.TV(hfad.TagUDef, "bulk"))
	if err != nil || len(ids) != 1 || ids[0] != oids[5] {
		t.Fatalf("conjunction = %v, %v", ids, err)
	}
	// Objects created in a batch read back through the normal path.
	obj, err := st.OpenObject(oids[2])
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	buf := make([]byte, 10)
	if _, err := obj.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf[:4]) != "bulk" {
		t.Errorf("batch-created object content = %q", buf)
	}
}
