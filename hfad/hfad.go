// Package hfad is the public API of this repository's reproduction of
// "Hierarchical File Systems Are Dead" (Seltzer & Murphy, HotOS 2009): a
// file system that replaces the hierarchical namespace with a tagged,
// search-based one.
//
// A Store is an hFAD volume on a (simulated) block device. Objects are
// uniquely identified containers of bytes with byte-level read, write,
// insert-anywhere, and truncate-anywhere. Naming is by tag/value pairs
// resolved through extensible index stores; a POSIX path is just one name
// among many. The compatibility layer exposes the same objects through
// paths, directories, hard links, and an io/fs adapter.
//
// Quick start:
//
//	dev := hfad.NewMemDevice(1 << 15) // 128 MiB simulated disk
//	st, _ := hfad.Create(dev, hfad.Options{})
//	defer st.Close()
//
//	obj, _ := st.CreateObject("margo")
//	obj.Append([]byte("the quick brown fox"))
//	st.Tag(obj.OID(), "UDEF", "notes")
//	st.IndexContent(obj.OID()) // full-text
//
//	ids, _ := st.Find(hfad.TV("FULLTEXT", "quick"), hfad.TV("UDEF", "notes"))
//
//	pfs, _ := st.POSIX()
//	pfs.WriteFile("/docs/readme.txt", []byte("legacy path"), 0o644)
package hfad

import (
	"time"

	"repro/internal/blockdev"
	"repro/internal/buddy"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/fulltext"
	"repro/internal/index"
	"repro/internal/osd"
	"repro/internal/pager"
	"repro/internal/posixfs"
	"repro/internal/wal"
)

// Re-exported identifiers and naming types.
type (
	// OID uniquely identifies an object.
	OID = osd.OID
	// Object is an open byte-addressable storage object.
	Object = osd.Object
	// Meta is object metadata.
	Meta = osd.Meta
	// TagValue is one naming term.
	TagValue = core.TagValue
	// Query is a boolean query tree.
	Query = core.Query
	// Term matches objects named (Tag, Value).
	Term = core.Term
	// Range matches tag values in [Lo, Hi).
	Range = core.Range
	// And is a conjunction.
	And = core.And
	// Or is a disjunction.
	Or = core.Or
	// Not negates a subquery inside And.
	Not = core.Not
	// Search is an iterative query refinement (the semantic-FS "current
	// directory").
	Search = core.Search
	// Page bounds a query: at most Limit results (0 = all) with OIDs
	// strictly greater than After — streaming pagination, not
	// compute-all-and-slice.
	Page = core.Page
	// PlanStep is one element of an Explain or Profile plan.
	PlanStep = core.PlanStep
	// Batch composes several mutations into one commit unit (see
	// Store.Batch).
	Batch = core.Batch
)

// Standard tags (Table 1 of the paper).
const (
	TagPOSIX    = index.TagPOSIX
	TagFulltext = index.TagFulltext
	TagUser     = index.TagUser
	TagUDef     = index.TagUDef
	TagApp      = index.TagApp
	TagID       = index.TagID
	TagImage    = index.TagImage
)

// TV builds a TagValue from strings.
func TV(tag, value string) TagValue { return core.TV(tag, value) }

// Options configures volume creation.
type Options struct {
	// Transactional turns on write-ahead logging: every metadata
	// operation commits atomically and crashes recover by log replay.
	Transactional bool
	// WALBlocks sizes the log region (default 256 blocks = 1 MiB). Size
	// it for the ingest burst: the background checkpointer drains the log
	// when it passes its high-water mark, and a bigger region means fewer
	// checkpoint pauses on sustained writes.
	WALBlocks uint64
	// CachePages sizes the buffer cache (default 1024 pages).
	CachePages int
	// IndexShards spreads the USER/UDEF/APP indexes over several btrees
	// to remove lock hotspots (default 4).
	IndexShards int
	// MaxExtentBytes bounds object extents and therefore the tail copy a
	// mid-object insert can trigger (default 256 KiB).
	MaxExtentBytes uint32
	// FulltextFlushDocs buffers this many documents before writing a
	// segment (default 512).
	FulltextFlushDocs int
	// SerialCommit reproduces the pre-group-commit write path (one sync
	// per operation, full dirty-cache scan, commits serialized). It is a
	// measurement baseline for experiment E13; leave it off.
	SerialCommit bool
	// ImageLogging reproduces the page-image redo pipeline (whole-page
	// write sets shared conservatively between concurrent transactions).
	// It is the measurement baseline for experiment E15 and retains the
	// shared-page commit anomaly; leave it off.
	ImageLogging bool
	// Clock injects timestamps; nil uses time.Now.
	Clock func() time.Time
}

func (o Options) toCore() core.Options {
	return core.Options{
		Transactional:  o.Transactional,
		WALBlocks:      o.WALBlocks,
		SerialCommit:   o.SerialCommit,
		ImageLogging:   o.ImageLogging,
		CachePages:     o.CachePages,
		IndexShards:    o.IndexShards,
		ExtentConfig:   extent.Config{MaxExtentBytes: o.MaxExtentBytes},
		FulltextConfig: fulltext.Config{FlushDocs: o.FulltextFlushDocs},
		Clock:          o.Clock,
	}
}

// Device is the stable-storage interface volumes run on.
type Device = blockdev.Device

// NewMemDevice returns an in-memory simulated disk with the given number
// of 4 KiB blocks.
func NewMemDevice(blocks uint64) *blockdev.MemDevice {
	return blockdev.NewMem(blocks, blockdev.DefaultBlockSize)
}

// Store is an open hFAD volume.
type Store struct {
	vol *core.Volume
	pfs *posixfs.FS
}

// Create formats dev as a new hFAD volume.
func Create(dev Device, opts Options) (*Store, error) {
	vol, err := core.Create(dev, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Store{vol: vol}, nil
}

// Open loads an existing volume, recovering from the write-ahead log and
// rebuilding allocator state as needed.
func Open(dev Device, opts Options) (*Store, error) {
	vol, err := core.Open(dev, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Store{vol: vol}, nil
}

// Volume exposes the native-API volume for advanced use.
func (s *Store) Volume() *core.Volume { return s.vol }

// Close cleanly shuts the volume down.
func (s *Store) Close() error { return s.vol.Close() }

// Sync flushes all state without closing.
func (s *Store) Sync() error { return s.vol.Sync() }

// --- access interfaces (objects) ---

// CreateObject allocates a new object owned by owner.
func (s *Store) CreateObject(owner string) (*Object, error) {
	return s.vol.OSD.CreateObject(owner, osd.ModeRegular|0o644)
}

// OpenObject opens an existing object by ID — the FastPath of Table 1.
func (s *Store) OpenObject(oid OID) (*Object, error) {
	return s.vol.OSD.OpenObject(oid)
}

// Stat returns an object's metadata.
func (s *Store) Stat(oid OID) (Meta, error) { return s.vol.OSD.Stat(oid) }

// DeleteObject removes all names and destroys the object.
func (s *Store) DeleteObject(oid OID) error { return s.vol.DeleteObject(oid) }

// --- naming interfaces ---

// Tag attaches a (tag, value) name to an object.
func (s *Store) Tag(oid OID, tag, value string) error {
	return s.vol.AddName(oid, tag, []byte(value))
}

// TagBytes attaches a binary-valued name (e.g. image bitmaps).
func (s *Store) TagBytes(oid OID, tag string, value []byte) error {
	return s.vol.AddName(oid, tag, value)
}

// Untag removes a (tag, value) name.
func (s *Store) Untag(oid OID, tag, value string) error {
	return s.vol.RemoveName(oid, tag, []byte(value))
}

// Names lists every name attached to an object.
func (s *Store) Names(oid OID) ([]TagValue, error) { return s.vol.Names(oid) }

// Find resolves a naming vector: the conjunction of an index lookup per
// tag/value pair, ascending by OID.
func (s *Store) Find(pairs ...TagValue) ([]OID, error) { return s.vol.Resolve(pairs...) }

// FindOne resolves to a single object (lowest OID on ties).
func (s *Store) FindOne(pairs ...TagValue) (OID, error) { return s.vol.ResolveOne(pairs...) }

// Query evaluates a boolean query tree with selectivity-ordered planning.
func (s *Store) Query(q Query) ([]OID, error) { return s.vol.Query(q) }

// QueryPage evaluates q bounded by p: the streaming engine stops after
// p.Limit results and seeks past p.After instead of materializing the
// full answer.
func (s *Store) QueryPage(q Query, p Page) ([]OID, error) { return s.vol.QueryPage(q, p) }

// FindPage resolves a naming vector bounded by p — Find for result sets
// too large to list at once.
func (s *Store) FindPage(p Page, pairs ...TagValue) ([]OID, error) {
	qs := make([]Query, len(pairs))
	for i, pair := range pairs {
		qs[i] = Term{Tag: pair.Tag, Value: pair.Value}
	}
	return s.vol.QueryPage(And{Kids: qs}, p)
}

// Batch runs fn and commits everything it did — object creation,
// appends, tagging, content indexing — as one transaction: one write
// set, one group-commit enqueue, at most one device sync (shared with
// concurrent committers), and batched multi-puts into the tag indexes.
// This is the bulk-ingest path:
//
//	err := st.Batch(func(b *hfad.Batch) error {
//		for _, doc := range docs {
//			obj, err := b.CreateObject("ingest")
//			if err != nil {
//				return err
//			}
//			if err := b.Append(obj, doc.Data); err != nil {
//				return err
//			}
//			if err := b.Tag(obj.OID(), hfad.TagUDef, doc.Label); err != nil {
//				return err
//			}
//			obj.Close()
//		}
//		return nil
//	})
//
// A non-nil error from fn skips the buffered tag puts and is returned —
// but it is not a rollback: mutations fn already applied persist
// (redo-only storage has no undo). Run independent batches from
// independent goroutines; a single Batch is not for concurrent use.
//
// Inside fn, touch the volume ONLY through the Batch's own methods and
// direct object reads (OpenObject/ReadAt/Stat). The Store's mutating
// methods (Tag, CreateObject, object writes, ...) would open a nested
// transaction bracket, and its query methods (Find, Query, Names, ...)
// would re-acquire the lifecycle lock recursively — either can deadlock
// against a concurrent checkpoint or Close. Queries before or after the
// batch see its names once it commits.
func (s *Store) Batch(fn func(*Batch) error) error { return s.vol.Batch(fn) }

// NewSearch starts an iterative search refinement.
func (s *Store) NewSearch() *Search { return s.vol.NewSearch() }

// IndexContent reads an object's bytes and indexes them as full text.
func (s *Store) IndexContent(oid OID) error { return s.vol.IndexContent(oid) }

// StartLazyIndexing launches the background full-text indexer; queued
// objects become searchable asynchronously.
func (s *Store) StartLazyIndexing(queueDepth int) { s.vol.StartLazyIndexing(queueDepth) }

// IndexContentLazy queues an object for background indexing.
func (s *Store) IndexContentLazy(oid OID) error { return s.vol.IndexContentLazy(oid) }

// WaitIndexIdle blocks until all queued documents are searchable.
func (s *Store) WaitIndexIdle() { s.vol.WaitIndexIdle() }

// --- POSIX compatibility ---

// POSIX returns the path-based view of the volume, creating the root
// directory on first use.
func (s *Store) POSIX() (*posixfs.FS, error) {
	if s.pfs != nil {
		return s.pfs, nil
	}
	pfs, err := posixfs.New(s.vol)
	if err != nil {
		return nil, err
	}
	s.pfs = pfs
	return pfs, nil
}

// --- maintenance ---

// StoreStats aggregates every layer's counters in one snapshot. All
// sources use atomic or mutex-guarded accessors, so it is safe to call
// concurrently with any operation — this is what the hfadd server's
// /metrics endpoint scrapes under load.
type StoreStats struct {
	Objects osd.Stats
	Cache   pager.Stats
	Alloc   buddy.Stats
	// WAL is nil on non-transactional volumes.
	WAL *wal.Stats
}

// Stats snapshots the volume's operation, cache, allocator, and WAL
// counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Objects: s.vol.OSD.Stats(),
		Cache:   s.vol.Pager().Stats(),
		Alloc:   s.vol.Allocator().Stats(),
	}
	if l := s.vol.WAL(); l != nil {
		ws := l.Stats()
		st.WAL = &ws
	}
	return st
}

// Check runs a full volume consistency check (fsck).
func (s *Store) Check() (*core.CheckReport, error) { return s.vol.Check() }

// Health reports the volume's degraded/wedged state and fault counters.
// A degraded store fails mutations fast with core.ErrReadOnly while
// reads keep serving and the background checkpointer retries.
func (s *Store) Health() core.Health { return s.vol.Health() }

// Degraded reports whether the store is in read-only degraded mode.
func (s *Store) Degraded() bool { return s.vol.Degraded() }

// Scrub walks every checksummed block on the volume, verifies it against
// its recorded CRC32C, and reports corruption counts per block class.
// It is safe (and intended) to run against a live store; set
// opts.Throttle to cede the device to foreground I/O.
func (s *Store) Scrub(opts core.ScrubOptions) (*core.ScrubReport, error) {
	return s.vol.Scrub(opts)
}

// ScrubOptions tunes Store.Scrub.
type ScrubOptions = core.ScrubOptions

// ScrubReport is the result of a Store.Scrub pass.
type ScrubReport = core.ScrubReport

// Explain returns the planner's evaluation order for a query without
// executing it.
func (s *Store) Explain(q Query) ([]PlanStep, error) { return s.vol.Explain(q) }

// Profile executes a (bounded) query and returns the results together
// with the executed plan: per-leaf selectivity estimates plus the seek
// and emit counts the streaming iterators actually performed.
func (s *Store) Profile(q Query, p Page) ([]OID, []PlanStep, error) { return s.vol.Profile(q, p) }
