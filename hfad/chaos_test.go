package hfad_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"repro/hfad"
	"repro/internal/blockdev"
	"repro/internal/buddy"
	"repro/internal/core"
	"repro/internal/osd"
)

// chaosEnv reads an integer knob, for the nightly randomized tier: the
// PR smoke run uses the fixed defaults, the nightly job sweeps seeds
// and raises the op count.
func chaosEnv(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// typedChaosErr reports whether err is an error a faulted store may
// legitimately surface: detected corruption, injected transient EIO,
// degraded read-only mode, or structural detection built on either.
func typedChaosErr(err error) bool {
	return errors.Is(err, core.ErrCorrupt) || errors.Is(err, osd.ErrCorrupt) ||
		errors.Is(err, blockdev.ErrInjected) || errors.Is(err, core.ErrReadOnly) ||
		errors.Is(err, core.ErrBadSuperblock) ||
		// Honest resource exhaustion, not corruption: long nightly runs
		// legitimately fill the fixed-size device between deletes.
		errors.Is(err, buddy.ErrNoSpace)
}

// TestChaosMediaFaults runs a seeded random workload against a store
// whose device rots underneath it — scheduled bit flips on writes and
// reads, lost writes, and a misdirected write, all inside the data
// region — and holds one invariant throughout: an acknowledged write is
// durable or detected. Every read either returns exactly what the
// in-memory oracle says was acked, or fails with a typed error. Silent
// wrong data or a panic fails the test. After the workload the device
// stops rotting (rules exhaust/clear), the volume is closed, reopened
// through recovery, swept again, and scrubbed.
func TestChaosMediaFaults(t *testing.T) {
	ops := chaosEnv("HFADD_CHAOS_OPS", 400)
	seed := uint64(chaosEnv("HFADD_CHAOS_SEED", 1))

	mem := hfad.NewMemDevice(1 << 14)
	fd := blockdev.NewFault(mem)
	fd.Seed(int64(seed))
	st, err := hfad.Create(fd, hfad.Options{Transactional: true, WALBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}

	// The fault schedule: deterministic (Prob 0) firings planted at
	// operation depths the workload is guaranteed to reach, all confined
	// to the data region — the WAL and snapshot regions stay honest, so
	// commits ack and the rot surfaces on the home-page read path.
	start, blocks := st.Volume().DataRegion()
	lo, hi := start, start+blocks
	rules := []*blockdev.Rule{
		fd.AddRule(blockdev.FaultRule{Kind: blockdev.FaultBitFlip, Op: blockdev.OpWrite, Lo: lo, Hi: hi, After: 40, Count: 2}),
		fd.AddRule(blockdev.FaultRule{Kind: blockdev.FaultLostWrite, Op: blockdev.OpWrite, Lo: lo, Hi: hi, After: 120, Count: 2}),
		fd.AddRule(blockdev.FaultRule{Kind: blockdev.FaultMisdirected, Op: blockdev.OpWrite, Lo: lo, Hi: hi, After: 220, Count: 1}),
		fd.AddRule(blockdev.FaultRule{Kind: blockdev.FaultBitFlip, Op: blockdev.OpRead, Lo: lo, Hi: hi, After: 60, Count: 3}),
	}

	rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
	oracle := make(map[hfad.OID][]byte) // acked content per object
	var oids []hfad.OID                 // stable iteration/pick order
	drop := func(oid hfad.OID) {
		delete(oracle, oid)
		for i, o := range oids {
			if o == oid {
				oids = append(oids[:i], oids[i+1:]...)
				break
			}
		}
	}
	body := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Uint32())
		}
		return b
	}
	// verify holds the core invariant for one object: acked content or a
	// typed error, never silent wrong data.
	verify := func(s *hfad.Store, oid hfad.OID, phase string) (detected bool) {
		want := oracle[oid]
		obj, err := s.OpenObject(oid)
		if err != nil {
			if !typedChaosErr(err) {
				t.Fatalf("%s: open oid %d: untyped error %v", phase, oid, err)
			}
			return true
		}
		defer obj.Close()
		got := make([]byte, len(want))
		n, err := obj.ReadAt(got, 0)
		if err != nil && !(errors.Is(err, io.EOF) && n == len(want)) {
			if !typedChaosErr(err) {
				t.Fatalf("%s: read oid %d: untyped error %v", phase, oid, err)
			}
			return true
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: oid %d ACKED WRITE SILENTLY WRONG (%d bytes, seed %d)", phase, oid, len(want), seed)
		}
		return false
	}

	for i := 0; i < ops; i++ {
		switch op := rng.IntN(10); {
		case op < 4 || len(oids) == 0: // create
			obj, err := st.CreateObject("chaos")
			if err != nil {
				if !typedChaosErr(err) {
					t.Fatalf("op %d create: untyped error %v", i, err)
				}
				continue
			}
			content := body(50 + rng.IntN(6000))
			werr := obj.WriteAt(content, 0)
			obj.Close()
			if werr != nil {
				if !typedChaosErr(werr) {
					t.Fatalf("op %d write: untyped error %v", i, werr)
				}
				continue // not acked; object exists but stays out of the oracle
			}
			oracle[obj.OID()] = content
			oids = append(oids, obj.OID())
		case op < 6: // append to an existing object
			oid := oids[rng.IntN(len(oids))]
			obj, err := st.OpenObject(oid)
			if err != nil {
				if !typedChaosErr(err) {
					t.Fatalf("op %d open: untyped error %v", i, err)
				}
				continue
			}
			extra := body(20 + rng.IntN(2000))
			aerr := obj.Append(extra)
			obj.Close()
			if aerr != nil {
				if !typedChaosErr(aerr) {
					t.Fatalf("op %d append: untyped error %v", i, aerr)
				}
				// The abort path should have rolled back, but under media
				// faults we don't assume it; stop tracking this object.
				drop(oid)
				continue
			}
			oracle[oid] = append(oracle[oid], extra...)
		case op < 7 && len(oids) > 8: // delete — frees space, exercises unlink under faults
			oid := oids[rng.IntN(len(oids))]
			if err := st.DeleteObject(oid); err != nil {
				if !typedChaosErr(err) {
					t.Fatalf("op %d delete: untyped error %v", i, err)
				}
				drop(oid) // fate unknown under faults; stop tracking either way
				continue
			}
			drop(oid)
		case op < 8: // tag + resolve round trip
			oid := oids[rng.IntN(len(oids))]
			tag := fmt.Sprintf("chaos:%d", i)
			if err := st.Tag(oid, hfad.TagUDef, tag); err != nil {
				if !typedChaosErr(err) {
					t.Fatalf("op %d tag: untyped error %v", i, err)
				}
				continue
			}
			ids, err := st.Find(hfad.TagValue{Tag: hfad.TagUDef, Value: []byte(tag)})
			if err != nil {
				if !typedChaosErr(err) {
					t.Fatalf("op %d find: untyped error %v", i, err)
				}
				continue
			}
			if len(ids) != 1 || ids[0] != oid {
				t.Fatalf("op %d: find %q = %v, want [%d]", i, tag, ids, oid)
			}
		default: // read-verify a random acked object
			verify(st, oids[rng.IntN(len(oids))], fmt.Sprintf("op %d", i))
		}
		if i == ops/2 {
			// Mid-workload checkpoint pushes dirty pages through the armed
			// write rules so home-page rot actually lands on the device.
			if err := st.Sync(); err != nil && !typedChaosErr(err) {
				t.Fatalf("mid sync: untyped error %v", err)
			}
		}
	}

	fired := int64(0)
	for _, r := range rules {
		fired += r.Fired()
	}
	if fired == 0 {
		t.Fatalf("no fault rule fired in %d ops; chaos proved nothing", ops)
	}
	t.Logf("chaos: %d ops, %d objects acked, %d faults injected", ops, len(oids), fired)

	// The media stops rotting; the store must converge back to health.
	fd.ClearRules()
	detected := 0
	for _, oid := range oids {
		if verify(st, oid, "post-workload") {
			detected++
		}
	}

	// Close (flushes through the now-honest device), reopen through
	// recovery, and hold the same invariant on the recovered image.
	if err := st.Close(); err != nil && !typedChaosErr(err) {
		t.Fatalf("close: untyped error %v", err)
	}
	st2, err := hfad.Open(mem, hfad.Options{Transactional: true, WALBlocks: 512})
	if err != nil {
		if !typedChaosErr(err) {
			t.Fatalf("reopen: untyped error %v", err)
		}
		t.Logf("chaos: reopen detected corruption (typed): %v", err)
		return
	}
	defer st2.Close()
	reDetected := 0
	for _, oid := range oids {
		if verify(st2, oid, "post-recovery") {
			reDetected++
		}
	}

	rep, err := st2.Scrub(hfad.ScrubOptions{})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	t.Logf("chaos: %d/%d detected post-workload, %d post-recovery; %s",
		detected, len(oids), reDetected, rep)
}
