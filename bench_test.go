// Package repro's root benchmarks regenerate every exhibit of the
// reproduction at micro-benchmark granularity: one Benchmark per table or
// figure (T1, F1) and per claim-derived experiment (E1–E10). The
// full-scale table-producing runs live in cmd/hfadbench; these testing.B
// variants measure the same operations per-op so `go test -bench=.`
// exercises the whole comparison surface.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/hfad"
	"repro/internal/bench"
	"repro/internal/blockdev"
	"repro/internal/buddy"
	"repro/internal/dsearch"
	"repro/internal/extent"
	"repro/internal/hierfs"
	"repro/internal/index"
	"repro/internal/pager"
	"repro/internal/server"
	"repro/internal/workload"
)

// newStore builds a populated hFAD volume for benchmarks.
func newStore(b *testing.B, opts hfad.Options) *hfad.Store {
	b.Helper()
	st, err := hfad.Create(hfad.NewMemDevice(1<<15), opts)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func newHier(b *testing.B) *hierfs.FS {
	b.Helper()
	fs, err := hierfs.Mkfs(blockdev.NewMem(1<<15, blockdev.DefaultBlockSize), hierfs.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkT1_Table1 measures one naming resolution per Table 1 row.
func BenchmarkT1_Table1(b *testing.B) {
	st := newStore(b, hfad.Options{})
	defer st.Close()
	pfs, err := st.POSIX()
	if err != nil {
		b.Fatal(err)
	}
	if err := pfs.MkdirAll("/home/margo", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := pfs.WriteFile("/home/margo/paper.tex", []byte("hierarchical file systems are dead"), 0o644); err != nil {
		b.Fatal(err)
	}
	m, err := pfs.Stat("/home/margo/paper.tex")
	if err != nil {
		b.Fatal(err)
	}
	if err := st.IndexContent(m.OID); err != nil {
		b.Fatal(err)
	}
	_ = st.Tag(m.OID, hfad.TagUser, "margo")
	_ = st.Tag(m.OID, hfad.TagUDef, "annotation:draft")
	_ = st.Tag(m.OID, hfad.TagApp, "latex")

	rows := []struct {
		name  string
		pairs []hfad.TagValue
	}{
		{"POSIX", []hfad.TagValue{hfad.TV(hfad.TagPOSIX, "/home/margo/paper.tex")}},
		{"Search_FULLTEXT", []hfad.TagValue{hfad.TV(hfad.TagFulltext, "hierarchical")}},
		{"Manual_USER", []hfad.TagValue{hfad.TV(hfad.TagUser, "margo")}},
		{"Manual_UDEF", []hfad.TagValue{hfad.TV(hfad.TagUDef, "annotation:draft")}},
		{"Applications_APP_USER", []hfad.TagValue{hfad.TV(hfad.TagApp, "latex"), hfad.TV(hfad.TagUser, "margo")}},
		{"FastPath_ID", []hfad.TagValue{hfad.TV(hfad.TagID, fmt.Sprintf("%d", m.OID))}},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids, err := st.Find(row.pairs...)
				if err != nil || len(ids) != 1 {
					b.Fatalf("find = %v, %v", ids, err)
				}
			}
		})
	}
}

// BenchmarkF1_ArchitectureWalk pushes one request through every layer of
// Figure 1 per iteration.
func BenchmarkF1_ArchitectureWalk(b *testing.B) {
	st := newStore(b, hfad.Options{})
	defer st.Close()
	pfs, err := st.POSIX()
	if err != nil {
		b.Fatal(err)
	}
	if err := pfs.MkdirAll("/walk", 0o755); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fmt.Sprintf("/walk/f%d", i)
		if err := pfs.WriteFile(p, []byte("layer cake contents"), 0o644); err != nil {
			b.Fatal(err)
		}
		m, err := pfs.Stat(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Tag(m.OID, hfad.TagUDef, "walked"); err != nil {
			b.Fatal(err)
		}
		obj, err := st.OpenObject(m.OID)
		if err != nil {
			b.Fatal(err)
		}
		if err := obj.InsertAt(5, []byte(" deep")); err != nil {
			b.Fatal(err)
		}
		if _, err := obj.ReadAt(buf[:10], 0); err != nil && !errors.Is(err, io.EOF) {
			b.Fatal(err)
		}
		obj.Close()
		if err := st.Untag(m.OID, hfad.TagUDef, "walked"); err != nil {
			b.Fatal(err)
		}
		// Remove the file so the volume stays in steady state; reclaim is
		// part of the architecture walk too.
		if err := pfs.Remove(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_SearchToData compares search-term→data-block per query.
func BenchmarkE1_SearchToData(b *testing.B) {
	const files = 64
	docs := workload.DocCorpus(99, workload.DocCorpusConfig{Docs: files, RareEvery: 1})

	b.Run("hierfs+dsearch", func(b *testing.B) {
		fs := newHier(b)
		if err := fs.MkdirAll("/a/b/c/d", 0o755); err != nil {
			b.Fatal(err)
		}
		for _, d := range docs {
			if err := fs.WriteFile("/a/b/c/d/"+d.Name, []byte(d.Text), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		eng, err := dsearch.New(fs, "/index.db", 4096)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Crawl("/"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.SearchToData(fmt.Sprintf("marker%d", i%files)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hFAD", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		defer st.Close()
		for _, d := range docs {
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			if err := obj.Append([]byte(d.Text)); err != nil {
				b.Fatal(err)
			}
			if err := st.IndexContent(obj.OID()); err != nil {
				b.Fatal(err)
			}
			obj.Close()
		}
		buf := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids, err := st.Find(hfad.TV(hfad.TagFulltext, fmt.Sprintf("marker%d", i%files)))
			if err != nil || len(ids) == 0 {
				b.Fatalf("find: %v %v", ids, err)
			}
			obj, err := st.OpenObject(ids[0])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := obj.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
				b.Fatal(err)
			}
			obj.Close()
		}
	})
}

// BenchmarkE2_SharedAncestor measures parallel name resolution.
func BenchmarkE2_SharedAncestor(b *testing.B) {
	const users = 64
	b.Run("hierfs", func(b *testing.B) {
		fs := newHier(b)
		if err := fs.MkdirAll("/home", 0o755); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < users; i++ {
			d := fmt.Sprintf("/home/u%02d", i)
			if err := fs.Mkdir(d, 0o755); err != nil {
				b.Fatal(err)
			}
			if err := fs.WriteFile(d+"/f", []byte("x"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := fs.Lookup(fmt.Sprintf("/home/u%02d/f", i%users)); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
	b.Run("hFAD", func(b *testing.B) {
		st := newStore(b, hfad.Options{IndexShards: 8})
		defer st.Close()
		for i := 0; i < users; i++ {
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Tag(obj.OID(), hfad.TagUser, fmt.Sprintf("u%02d", i)); err != nil {
				b.Fatal(err)
			}
			obj.Close()
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := st.Find(hfad.TV(hfad.TagUser, fmt.Sprintf("u%02d", i%users))); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}

// BenchmarkE3_MiddleInsert inserts 24 bytes at the middle of a 1 MiB
// object.
func BenchmarkE3_MiddleInsert(b *testing.B) {
	const size = 1 << 20
	content := workload.NewRng(3).Bytes(size)
	ins := []byte("spliced into the middle!")

	// Inserts land at a fixed offset; every resetEvery iterations the
	// accumulated bytes are deleted (outside the timer) so the object —
	// and the device — stay in steady state at any b.N.
	const resetEvery = 2048
	b.Run("hierfs", func(b *testing.B) {
		fs := newHier(b)
		if err := fs.WriteFile("/victim", content, 0o644); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%resetEvery == 0 {
				b.StopTimer()
				if err := fs.DeleteRangeAt("/victim", size/2, resetEvery*uint64(len(ins))); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := fs.InsertAt("/victim", size/2, ins); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hFAD", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		defer st.Close()
		obj, err := st.CreateObject("u")
		if err != nil {
			b.Fatal(err)
		}
		if err := obj.Append(content); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%resetEvery == 0 {
				b.StopTimer()
				if err := obj.TruncateRange(size/2, resetEvery*uint64(len(ins))); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := obj.InsertAt(size/2, ins); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4_MultiNaming compares adding one more categorization.
func BenchmarkE4_MultiNaming(b *testing.B) {
	content := workload.NewRng(4).Bytes(16 << 10)
	b.Run("hierfs-copy", func(b *testing.B) {
		fs := newHier(b)
		if err := fs.MkdirAll("/c", 0o755); err != nil {
			b.Fatal(err)
		}
		if err := fs.WriteFile("/c/item", content, 0o644); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%256 == 0 {
				b.StopTimer()
				for j := i - 256; j < i; j++ {
					if err := fs.Remove(fmt.Sprintf("/c/copy%d", j)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			data, err := fs.ReadFile("/c/item")
			if err != nil {
				b.Fatal(err)
			}
			if err := fs.WriteFile(fmt.Sprintf("/c/copy%d", i), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hFAD-tag", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		defer st.Close()
		obj, err := st.CreateObject("u")
		if err != nil {
			b.Fatal(err)
		}
		if err := obj.Append(content); err != nil {
			b.Fatal(err)
		}
		oid := obj.OID()
		obj.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Cycle the value space: re-tagging an existing name is an
			// idempotent index put, so state stays bounded at any b.N.
			if err := st.Tag(oid, hfad.TagUDef, fmt.Sprintf("collection:%d", i%4096)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5_AttributeSearch runs the person∧place conjunction against
// a 1000-photo library.
func BenchmarkE5_AttributeSearch(b *testing.B) {
	lib := workload.MediaLibrary(2025, workload.MediaLibraryConfig{Photos: 1000, MinSize: 1 << 10, MaxSize: 4 << 10})
	person, place := "person:"+lib[0].Person, "place:"+lib[0].Place

	b.Run("hFAD-conjunction", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		defer st.Close()
		for _, p := range lib {
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			oid := obj.OID()
			obj.Close()
			_ = st.Tag(oid, hfad.TagUDef, "person:"+p.Person)
			_ = st.Tag(oid, hfad.TagUDef, "place:"+p.Place)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Find(hfad.TV(hfad.TagUDef, person), hfad.TV(hfad.TagUDef, place)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hierfs-walk", func(b *testing.B) {
		fs := newHier(b)
		made := map[string]bool{}
		for _, p := range lib {
			if !made[p.Dir] {
				if err := fs.MkdirAll(p.Dir, 0o755); err != nil {
					b.Fatal(err)
				}
				made[p.Dir] = true
			}
			meta := fmt.Sprintf("person=%s place=%s\n", p.Person, p.Place)
			if err := fs.WriteFile(p.Path(), []byte(meta), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		buf := make([]byte, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			found := 0
			err := fs.Walk("/photos", func(pp string, info hierfs.FileInfo) error {
				if info.IsDir() {
					return nil
				}
				if _, err := fs.ReadAt(pp, buf, 0); err != nil && !errors.Is(err, io.EOF) {
					return err
				}
				found++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6_ClusteringIllusory reads one photo set per iteration under
// the two access patterns.
func BenchmarkE6_ClusteringIllusory(b *testing.B) {
	lib := workload.MediaLibrary(7, workload.MediaLibraryConfig{Photos: 300, MinSize: 4 << 10, MaxSize: 8 << 10, Years: 2})
	fs := newHier(b)
	made := map[string]bool{}
	for _, p := range lib {
		if !made[p.Dir] {
			if err := fs.MkdirAll(p.Dir, 0o755); err != nil {
				b.Fatal(err)
			}
			made[p.Dir] = true
		}
		if err := fs.WriteFile(p.Path(), workload.NewRng(1).Bytes(p.Size), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	byDir := map[string][]workload.Photo{}
	byPerson := map[string][]workload.Photo{}
	for _, p := range lib {
		byDir[p.Dir] = append(byDir[p.Dir], p)
		byPerson[p.Person] = append(byPerson[p.Person], p)
	}
	var dirKey, personKey string
	for k := range byDir {
		if len(byDir[k]) > len(byDir[dirKey]) {
			dirKey = k
		}
	}
	for k := range byPerson {
		if len(byPerson[k]) > len(byPerson[personKey]) {
			personKey = k
		}
	}
	read := func(b *testing.B, set []workload.Photo) {
		for i := 0; i < b.N; i++ {
			for _, p := range set {
				buf := make([]byte, p.Size)
				if _, err := fs.ReadAt(p.Path(), buf, 0); err != nil && !errors.Is(err, io.EOF) {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("one-directory", func(b *testing.B) { read(b, byDir[dirKey]) })
	b.Run("one-person", func(b *testing.B) { read(b, byPerson[personKey]) })
}

// BenchmarkE7_ExtentMapAblation inserts mid-object with both extent maps.
func BenchmarkE7_ExtentMapAblation(b *testing.B) {
	const extents = 2000
	const extentSize = 4096
	content := workload.NewRng(1).Bytes(extentSize)

	b.Run("counted-tree", func(b *testing.B) {
		dev := blockdev.NewMem(1<<16, blockdev.DefaultBlockSize)
		pg := pager.New(dev, 2048, true)
		ba := buddy.New(1, 1<<16-1)
		ct, err := extent.Create(pg, ba, extent.Config{MaxExtentBytes: extentSize})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < extents; i++ {
			if err := ct.WriteAt(content, ct.Size()); err != nil {
				b.Fatal(err)
			}
		}
		mid := ct.Size() / 2
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%2048 == 0 {
				b.StopTimer()
				if err := ct.DeleteRange(mid, 2048*100); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := ct.InsertAt(mid, content[:100]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("offset-keyed", func(b *testing.B) {
		dev := blockdev.NewMem(1<<16, blockdev.DefaultBlockSize)
		pg := pager.New(dev, 2048, true)
		ba := buddy.New(1, 1<<16-1)
		km, err := extent.NewKeyedMap(pg, ba, extent.Config{MaxExtentBytes: extentSize})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < extents; i++ {
			if err := km.Append(content); err != nil {
				b.Fatal(err)
			}
		}
		mid := km.Size() / 2
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%512 == 0 {
				b.StopTimer()
				if err := km.DeleteRange(mid, 512*100); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := km.InsertAt(mid, content[:100]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_IndexSharding measures parallel tag lookups by shard count.
func BenchmarkE8_IndexSharding(b *testing.B) {
	const users = 64
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			st := newStore(b, hfad.Options{IndexShards: shards})
			defer st.Close()
			for i := 0; i < users; i++ {
				obj, err := st.CreateObject("u")
				if err != nil {
					b.Fatal(err)
				}
				if err := st.Tag(obj.OID(), hfad.TagUser, fmt.Sprintf("u%02d", i)); err != nil {
					b.Fatal(err)
				}
				obj.Close()
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := st.Find(hfad.TV(hfad.TagUser, fmt.Sprintf("u%02d", i%users))); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkE9_LazyIndexing measures per-document ingest cost with
// synchronous vs background indexing.
func BenchmarkE9_LazyIndexing(b *testing.B) {
	text := workload.DocCorpus(1, workload.DocCorpusConfig{Docs: 1, WordsPer: 150})[0].Text
	// Ingest accumulates objects and postings; recreate the store every
	// resetEvery iterations (outside the timer) for steady state.
	const resetEvery = 2048
	b.Run("synchronous", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%resetEvery == 0 {
				b.StopTimer()
				st.Close()
				st = newStore(b, hfad.Options{})
				b.StartTimer()
			}
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			if err := obj.Append([]byte(text)); err != nil {
				b.Fatal(err)
			}
			if err := st.IndexContent(obj.OID()); err != nil {
				b.Fatal(err)
			}
			obj.Close()
		}
		b.StopTimer()
		st.Close()
	})
	b.Run("lazy", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		st.StartLazyIndexing(1 << 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%resetEvery == 0 {
				b.StopTimer()
				st.WaitIndexIdle()
				st.Close()
				st = newStore(b, hfad.Options{})
				st.StartLazyIndexing(1 << 16)
				b.StartTimer()
			}
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			if err := obj.Append([]byte(text)); err != nil {
				b.Fatal(err)
			}
			if err := st.IndexContentLazy(obj.OID()); err != nil {
				b.Fatal(err)
			}
			obj.Close()
		}
		b.StopTimer()
		st.WaitIndexIdle()
		st.Close()
	})
}

// BenchmarkE10_TransactionalOSD measures the create+write+tag mix with
// the WAL off and on.
func BenchmarkE10_TransactionalOSD(b *testing.B) {
	payload := workload.NewRng(5).Bytes(8 << 10)
	for _, transactional := range []bool{false, true} {
		name := "wal-off"
		if transactional {
			name = "wal-on"
		}
		b.Run(name, func(b *testing.B) {
			opts := hfad.Options{Transactional: transactional}
			st := newStore(b, opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%2048 == 0 {
					b.StopTimer()
					st.Close()
					st = newStore(b, opts)
					b.StartTimer()
				}
				obj, err := st.CreateObject("u")
				if err != nil {
					b.Fatal(err)
				}
				if err := obj.Append(payload); err != nil {
					b.Fatal(err)
				}
				if err := st.Tag(obj.OID(), hfad.TagUDef, fmt.Sprintf("b:%d", i%10)); err != nil {
					b.Fatal(err)
				}
				obj.Close()
			}
			b.StopTimer()
			st.Close()
		})
	}
}

// newSyncCostStore builds a transactional store (16 MiB log) over
// bench.SyncCostDevice — a device with a flush cost per sync, the same
// model the E13/E14 hfadbench runners measure against.
func newSyncCostStore(b *testing.B, opts hfad.Options) *hfad.Store {
	b.Helper()
	st, err := bench.NewSyncCostStore(1<<15, opts)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkE13_GroupCommit is the group-commit exhibit: N concurrent
// writers ingest (create + append + tag) against a wal-on volume. The
// group path shares one log append + one sync per batch of concurrent
// commits; the serialized-* variants reproduce the pre-group-commit
// pipeline (full dirty-cache scan, force-at-commit, one sync per op,
// commits serialized) for the A/B. syncs/op is the amortization receipt:
// ≈1 for the serialized path, ≪1 for group commit under concurrency.
func BenchmarkE13_GroupCommit(b *testing.B) {
	payload := workload.NewRng(13).Bytes(512)
	run := func(b *testing.B, writers int, serial bool) {
		opts := hfad.Options{Transactional: true, SerialCommit: serial}
		st := newSyncCostStore(b, opts)
		syncs0 := st.Volume().WAL().Stats().Syncs
		var syncs int64
		b.ResetTimer()
		// Work in rounds so the device stays in steady state at any b.N.
		const roundSize = 2048
		remaining := b.N
		for remaining > 0 {
			n := remaining
			if n > roundSize {
				n = roundSize
			}
			remaining -= n
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(n) {
							return
						}
						obj, err := st.CreateObject("w")
						if err != nil {
							b.Error(err)
							return
						}
						if err := obj.Append(payload); err != nil {
							b.Error(err)
							return
						}
						if err := st.Tag(obj.OID(), hfad.TagUDef, fmt.Sprintf("g:%d", i%10)); err != nil {
							b.Error(err)
							return
						}
						obj.Close()
					}
				}(w)
			}
			wg.Wait()
			if remaining > 0 {
				b.StopTimer()
				syncs += st.Volume().WAL().Stats().Syncs - syncs0
				st.Close()
				st = newSyncCostStore(b, opts)
				syncs0 = st.Volume().WAL().Stats().Syncs
				b.StartTimer()
			}
		}
		b.StopTimer()
		syncs += st.Volume().WAL().Stats().Syncs - syncs0
		st.Close()
		b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
	}
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			run(b, writers, false)
		})
	}
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("serialized-writers-%d", writers), func(b *testing.B) {
			run(b, writers, true)
		})
	}
}

// BenchmarkE14_BatchedIngest measures per-object ingest cost when the
// Batch API composes create + append + tag + index-content into one
// commit unit (one write set, one group enqueue, batched index
// multi-puts) versus issuing the same four operations individually (four
// transactions per object).
func BenchmarkE14_BatchedIngest(b *testing.B) {
	text := []byte(workload.DocCorpus(14, workload.DocCorpusConfig{Docs: 1, WordsPer: 40})[0].Text)
	opts := hfad.Options{Transactional: true}
	const roundSize = 2048
	ingestOne := func(st *hfad.Store, i int) error {
		obj, err := st.CreateObject("u")
		if err != nil {
			return err
		}
		defer obj.Close()
		if err := obj.Append(text); err != nil {
			return err
		}
		if err := st.Tag(obj.OID(), hfad.TagUDef, fmt.Sprintf("lot:%d", i%50)); err != nil {
			return err
		}
		return st.IndexContent(obj.OID())
	}
	b.Run("unbatched", func(b *testing.B) {
		st := newSyncCostStore(b, opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%roundSize == 0 {
				b.StopTimer()
				st.Close()
				st = newSyncCostStore(b, opts)
				b.StartTimer()
			}
			if err := ingestOne(st, i); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st.Close()
	})
	b.Run("batched-64", func(b *testing.B) {
		st := newSyncCostStore(b, opts)
		b.ResetTimer()
		done := 0
		for done < b.N {
			if done > 0 && done%roundSize == 0 {
				b.StopTimer()
				st.Close()
				st = newSyncCostStore(b, opts)
				b.StartTimer()
			}
			n := b.N - done
			if n > 64 {
				n = 64
			}
			err := st.Batch(func(bb *hfad.Batch) error {
				for i := 0; i < n; i++ {
					obj, err := bb.CreateObject("u")
					if err != nil {
						return err
					}
					if err := bb.Append(obj, text); err != nil {
						obj.Close()
						return err
					}
					if err := bb.Tag(obj.OID(), hfad.TagUDef, fmt.Sprintf("lot:%d", (done+i)%50)); err != nil {
						obj.Close()
						return err
					}
					if err := bb.IndexContent(obj.OID()); err != nil {
						obj.Close()
						return err
					}
					obj.Close()
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			done += n
		}
		b.StopTimer()
		st.Close()
	})
}

// BenchmarkE18_BigBatch is the steal-pager exhibit per-op: one Batch
// whose dirty page set is a multiple of the cache (each created object
// dirties its own extent-header page). Uncommitted dirty pages evict
// behind chunk-flushed log records; the batch commits without the
// retired flush-the-cache fallback. steals/op is the receipt.
func BenchmarkE18_BigBatch(b *testing.B) {
	const cachePages = 128
	const objects = 2 * cachePages // dirty set 2× the cache per batch
	opts := hfad.Options{Transactional: true, WALBlocks: 8192, CachePages: cachePages}
	payload := []byte("steal pager exhibit: uncommitted dirty pages evict behind the log")
	st := newSyncCostStore(b, opts)
	steals0 := st.Volume().Pager().Stats().Steals
	var steals int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%16 == 0 {
			b.StopTimer()
			steals += st.Volume().Pager().Stats().Steals - steals0
			st.Close()
			st = newSyncCostStore(b, opts)
			steals0 = st.Volume().Pager().Stats().Steals
			b.StartTimer()
		}
		err := st.Batch(func(bb *hfad.Batch) error {
			for j := 0; j < objects; j++ {
				obj, err := bb.CreateObject("u")
				if err != nil {
					return err
				}
				if err := bb.Append(obj, payload); err != nil {
					obj.Close()
					return err
				}
				obj.Close()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	steals += st.Volume().Pager().Stats().Steals - steals0
	if fb := st.Volume().CheckpointFallbacks(); fb != 0 {
		b.Fatalf("%d checkpoint fallbacks — steal should have carried every batch", fb)
	}
	st.Close()
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
}

// BenchmarkE11_SelectiveAnd is the streaming-engine exhibit: a
// conjunction of a broad tag (many objects) with a selective one (a
// handful). The slice baseline reproduces the old evaluator — materialize
// both posting lists, intersect — while the iterator engine seeks the
// broad index once per candidate. The oids-materialized/op metric counts
// how many OIDs each strategy pulled out of the indexes.
func BenchmarkE11_SelectiveAnd(b *testing.B) {
	const broad = 20000
	const rareEvery = 2000                                           // 10 selective hits
	st, err := hfad.Create(hfad.NewMemDevice(1<<17), hfad.Options{}) // 512 MiB
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < broad; i++ {
		obj, err := st.CreateObject("u")
		if err != nil {
			b.Fatal(err)
		}
		oid := obj.OID()
		obj.Close()
		if err := st.Tag(oid, hfad.TagUDef, "common"); err != nil {
			b.Fatal(err)
		}
		if i%rareEvery == 0 {
			if err := st.Tag(oid, hfad.TagUDef, "rare"); err != nil {
				b.Fatal(err)
			}
		}
	}
	q := hfad.And{Kids: []hfad.Query{
		hfad.Term{Tag: hfad.TagUDef, Value: []byte("common")},
		hfad.Term{Tag: hfad.TagUDef, Value: []byte("rare")},
	}}

	b.Run("slices", func(b *testing.B) {
		udef, err := st.Volume().Registry().Get(hfad.TagUDef)
		if err != nil {
			b.Fatal(err)
		}
		var materialized int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-iterator evaluator: full Lookup per term, then
			// slice intersection.
			common, err := udef.Lookup([]byte("common"))
			if err != nil {
				b.Fatal(err)
			}
			rare, err := udef.Lookup([]byte("rare"))
			if err != nil {
				b.Fatal(err)
			}
			ids := index.IntersectOIDs(rare, common)
			if len(ids) != broad/rareEvery {
				b.Fatalf("got %d ids", len(ids))
			}
			materialized += int64(len(common) + len(rare))
		}
		b.ReportMetric(float64(materialized)/float64(b.N), "oids-materialized/op")
	})
	b.Run("iterators", func(b *testing.B) {
		var materialized int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids, steps, err := st.Profile(q, hfad.Page{})
			if err != nil {
				b.Fatal(err)
			}
			if len(ids) != broad/rareEvery {
				b.Fatalf("got %d ids", len(ids))
			}
			for _, s := range steps {
				materialized += s.Steps
			}
		}
		b.ReportMetric(float64(materialized)/float64(b.N), "oids-materialized/op")
	})
	b.Run("iterators-limit1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ids, err := st.QueryPage(q, hfad.Page{Limit: 1})
			if err != nil || len(ids) != 1 {
				b.Fatalf("page = %v, %v", ids, err)
			}
		}
	})
}

// BenchmarkE12_PaginatedQuery pages through a broad tag with Limit/After
// versus materializing the full result each time — the "directory too big
// to list" workload a search-based namespace must serve.
func BenchmarkE12_PaginatedQuery(b *testing.B) {
	const n = 10000
	const pageSize = 20
	st := newStore(b, hfad.Options{})
	defer st.Close()
	for i := 0; i < n; i++ {
		obj, err := st.CreateObject("u")
		if err != nil {
			b.Fatal(err)
		}
		oid := obj.OID()
		obj.Close()
		if err := st.Tag(oid, hfad.TagUDef, "bulk"); err != nil {
			b.Fatal(err)
		}
	}
	term := hfad.Term{Tag: hfad.TagUDef, Value: []byte("bulk")}
	b.Run("full-materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ids, err := st.Query(term)
			if err != nil || len(ids) != n {
				b.Fatalf("query = %d, %v", len(ids), err)
			}
		}
	})
	b.Run("first-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ids, err := st.QueryPage(term, hfad.Page{Limit: pageSize})
			if err != nil || len(ids) != pageSize {
				b.Fatalf("page = %d, %v", len(ids), err)
			}
		}
	})
}

// BenchmarkAblation_MaxExtentBytes measures the DESIGN.md decision that
// bounds extents (and therefore the copy a mid-extent split performs):
// smaller caps mean cheaper splits but more extents to manage.
func BenchmarkAblation_MaxExtentBytes(b *testing.B) {
	const objectSize = 4 << 20
	for _, maxExtent := range []uint32{64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("cap-%dK", maxExtent>>10), func(b *testing.B) {
			st := newStore(b, hfad.Options{MaxExtentBytes: maxExtent})
			defer st.Close()
			obj, err := st.CreateObject("u")
			if err != nil {
				b.Fatal(err)
			}
			if err := obj.Append(workload.NewRng(9).Bytes(objectSize)); err != nil {
				b.Fatal(err)
			}
			rng := workload.NewRng(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%2048 == 0 {
					b.StopTimer()
					if err := obj.Truncate(0); err != nil {
						b.Fatal(err)
					}
					if err := obj.Append(workload.NewRng(9).Bytes(objectSize)); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				// Insert at a random unaligned offset so splits happen.
				off := uint64(rng.IntN(objectSize-1)) | 1
				if err := obj.InsertAt(off, []byte("x")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_RenameSubtree measures the DESIGN.md decision to key
// the POSIX index by full path: renaming a directory rewrites every
// descendant's names, where the inode-based hierarchy edits two directory
// entries. The flip side of that trade is hFAD's O(1) path lookup.
func BenchmarkAblation_RenameSubtree(b *testing.B) {
	const files = 64
	b.Run("hFAD-posix", func(b *testing.B) {
		st := newStore(b, hfad.Options{})
		defer st.Close()
		pfs, err := st.POSIX()
		if err != nil {
			b.Fatal(err)
		}
		if err := pfs.MkdirAll("/tree0/sub", 0o755); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < files; i++ {
			if err := pfs.WriteFile(fmt.Sprintf("/tree0/sub/f%02d", i), []byte("x"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pfs.Rename(fmt.Sprintf("/tree%d", i), fmt.Sprintf("/tree%d", i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hierfs", func(b *testing.B) {
		fs := newHier(b)
		if err := fs.MkdirAll("/tree0/sub", 0o755); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < files; i++ {
			if err := fs.WriteFile(fmt.Sprintf("/tree0/sub/f%02d", i), []byte("x"), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.Rename(fmt.Sprintf("/tree%d", i), fmt.Sprintf("/tree%d", i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE15_LogAmplification measures WAL bytes per small naming edit
// at 16 concurrent writers: the page-image pipeline (whole dirtied pages,
// conservatively shared across open transactions) versus physiological
// redo records (the typed edit itself). One UDEF shard so the writers
// genuinely contend on shared leaves. log-bytes/op is the exhibit.
func BenchmarkE15_LogAmplification(b *testing.B) {
	run := func(b *testing.B, imageLogging bool, writers int) {
		opts := hfad.Options{Transactional: true, ImageLogging: imageLogging, IndexShards: 1}
		st := newSyncCostStore(b, opts)
		oids := make([]hfad.OID, 16)
		for i := range oids {
			obj, err := st.CreateObject("w")
			if err != nil {
				b.Fatal(err)
			}
			oids[i] = obj.OID()
			obj.Close()
		}
		bytes0 := st.Volume().WAL().Stats().BytesLogged
		var logged int64
		b.ResetTimer()
		const roundSize = 4096
		remaining := b.N
		for remaining > 0 {
			n := remaining
			if n > roundSize {
				n = roundSize
			}
			remaining -= n
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(n) {
							return
						}
						if err := st.Tag(oids[w%len(oids)], hfad.TagUDef, fmt.Sprintf("v:%d:%d", w, i)); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if remaining > 0 {
				b.StopTimer()
				logged += st.Volume().WAL().Stats().BytesLogged - bytes0
				st.Close()
				st = newSyncCostStore(b, opts)
				for i := range oids {
					obj, err := st.CreateObject("w")
					if err != nil {
						b.Fatal(err)
					}
					oids[i] = obj.OID()
					obj.Close()
				}
				bytes0 = st.Volume().WAL().Stats().BytesLogged
				b.StartTimer()
			}
		}
		b.StopTimer()
		logged += st.Volume().WAL().Stats().BytesLogged - bytes0
		st.Close()
		b.ReportMetric(float64(logged)/float64(b.N), "log-bytes/op")
	}
	for _, writers := range []int{1, 16} {
		b.Run(fmt.Sprintf("physiological-writers-%d", writers), func(b *testing.B) {
			run(b, false, writers)
		})
	}
	for _, writers := range []int{1, 16} {
		b.Run(fmt.Sprintf("image-writers-%d", writers), func(b *testing.B) {
			run(b, true, writers)
		})
	}
}

// BenchmarkE16_ExtentLogAmplification measures WAL bytes per small
// *data-path* edit at 16 concurrent writers, each appending 64 bytes to
// its own large multi-node extent tree: per-object page-image logging
// (a 4 KiB record per touched tree level per op — the retired route)
// versus physiological extent records (the cell rewrite, count deltas,
// and two short header ranges). log-bytes/op is the exhibit.
func BenchmarkE16_ExtentLogAmplification(b *testing.B) {
	const writers = 16
	run := func(b *testing.B, imageLogging bool) {
		st := newSyncCostStore(b, hfad.Options{
			Transactional:  true,
			WALBlocks:      8192,
			ImageLogging:   imageLogging,
			MaxExtentBytes: 4096,
		})
		defer st.Close()
		objs := make([]*hfad.Object, writers)
		chunk := make([]byte, 4096)
		for i := range objs {
			obj, err := st.CreateObject("w")
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 300; j++ { // ~300 extents: a multi-node tree
				if err := obj.Append(chunk); err != nil {
					b.Fatal(err)
				}
			}
			objs[i] = obj
		}
		defer func() {
			for _, o := range objs {
				o.Close()
			}
		}()
		bytes0 := st.Volume().WAL().Stats().BytesLogged
		var next atomic.Int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, 64)
				for {
					i := next.Add(1)
					if i > int64(b.N) {
						return
					}
					buf[0] = byte(i)
					if err := objs[w].Append(buf); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		logged := st.Volume().WAL().Stats().BytesLogged - bytes0
		b.ReportMetric(float64(logged)/float64(b.N), "log-bytes/op")
	}
	b.Run("physiological", func(b *testing.B) { run(b, false) })
	b.Run("image", func(b *testing.B) { run(b, true) })
}

// BenchmarkE17_ServerFanIn measures the hfadd ingest path per-op: 16
// concurrent client connections creating objects over loopback HTTP,
// coalesced server-side into shared transactions (E17's claim at
// micro-benchmark granularity). Reported syncs/op should sit well
// below 1.
func BenchmarkE17_ServerFanIn(b *testing.B) {
	st, err := bench.NewSyncCostStore(1<<15, hfad.Options{
		Transactional: true,
		WALBlocks:     4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(st, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	const conns = 16
	clients := make([]*server.Client, conns)
	for i := range clients {
		clients[i] = server.NewClient(ln.Addr().String())
	}
	payload := workload.NewRng(17).Bytes(96)
	syncs0 := st.Volume().WAL().Stats().Syncs

	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				_, err := c.Create(&server.CreateReq{
					Data: payload,
					Tags: []server.TagPair{{Tag: hfad.TagUDef, Value: fmt.Sprintf("g:%d", i%10)}},
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	syncs := st.Volume().WAL().Stats().Syncs - syncs0
	b.ReportMetric(float64(syncs)/float64(b.N), "syncs/op")
}
