package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/server"
)

// runRemoteScript executes commands against a live hfadd server instead
// of a throwaway in-memory volume. Remote commands are object-centric
// (the wire API speaks OIDs, not paths): `create` prints the new OID and
// later commands take it as their first argument.
func runRemoteScript(addr string, cmds [][]string) error {
	c := server.NewClient(addr)
	if !c.Healthy() {
		return fmt.Errorf("no hfadd server at %s", addr)
	}
	for _, cmd := range cmds {
		fmt.Printf("$ hfadctl -addr %s %s\n", addr, strings.Join(cmd, " "))
		if err := executeRemote(c, cmd); err != nil {
			return fmt.Errorf("%s: %w", cmd[0], err)
		}
		fmt.Println()
	}
	return nil
}

func remoteUsage() string {
	return `remote commands (with -addr HOST:PORT):
  create TEXT [TAG VALUE]...   create an object with contents and names
  append OID TEXT              append bytes to an object
  cat OID                      print an object's bytes
  stat OID                     show metadata
  rm OID                       delete the object and all its names
  tag OID TAG VALUE            add a name
  untag OID TAG VALUE          remove a name
  names OID                    list all names
  find TAG VALUE [TAG VALUE]   resolve a naming vector
  findn LIMIT AFTER TAG VALUE [TAG VALUE]
                               paginated find (server-side streaming)
  explain TAG VALUE [TAG VALUE]
                               print the server's executed query plan
  search TERM...               full-text conjunction
  index OID                    full-text index an object's contents
  stats                        server + store counters`
}

func executeRemote(c *server.Client, cmd []string) error {
	need := func(n int) error {
		if len(cmd) < n+1 {
			return fmt.Errorf("need %d argument(s)", n)
		}
		return nil
	}
	oidArg := func(s string) (uint64, error) {
		oid, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad OID %q", s)
		}
		return oid, nil
	}
	pairsArg := func(args []string) ([]server.TagPair, error) {
		if len(args) == 0 || len(args)%2 != 0 {
			return nil, fmt.Errorf("want TAG VALUE pairs")
		}
		pairs := make([]server.TagPair, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			pairs = append(pairs, server.TagPair{Tag: args[i], Value: args[i+1]})
		}
		return pairs, nil
	}
	switch cmd[0] {
	case "create":
		if err := need(1); err != nil {
			return err
		}
		tags, _ := pairsArg(cmd[2:]) // optional; empty on odd/missing args
		resp, err := c.Create(&server.CreateReq{Data: []byte(cmd[1]), Tags: tags})
		if err != nil {
			return err
		}
		fmt.Printf("oid=%d size=%d\n", resp.OID, resp.Size)
		return nil
	case "append":
		if err := need(2); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		resp, err := c.Append(oid, []byte(strings.Join(cmd[2:], " ")))
		if err != nil {
			return err
		}
		fmt.Printf("size=%d\n", resp.Size)
		return nil
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		data, err := c.Read(oid, 0, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		m, err := c.Stat(oid)
		if err != nil {
			return err
		}
		fmt.Printf("oid=%d size=%d mode=%o owner=%q\n", m.OID, m.Size, m.Mode, m.Owner)
		return nil
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		return c.Delete(oid)
	case "tag", "untag":
		if err := need(3); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		if cmd[0] == "tag" {
			return c.Tag(oid, cmd[2], cmd[3])
		}
		return c.Untag(oid, cmd[2], cmd[3])
	case "names":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		resp, err := c.Names(oid)
		if err != nil {
			return err
		}
		for _, tv := range resp.Names {
			fmt.Printf("%-9s %s\n", tv.Tag, tv.Value)
		}
		return nil
	case "find":
		if err := need(2); err != nil {
			return err
		}
		pairs, err := pairsArg(cmd[1:])
		if err != nil {
			return err
		}
		resp, err := c.Find(&server.FindReq{Pairs: pairs})
		if err != nil {
			return err
		}
		fmt.Printf("-> %v\n", resp.OIDs)
		return nil
	case "findn":
		if err := need(4); err != nil {
			return err
		}
		limit, err := strconv.Atoi(cmd[1])
		if err != nil {
			return fmt.Errorf("bad LIMIT %q", cmd[1])
		}
		after, err := strconv.ParseUint(cmd[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad AFTER %q", cmd[2])
		}
		pairs, err := pairsArg(cmd[3:])
		if err != nil {
			return err
		}
		resp, err := c.Find(&server.FindReq{
			Pairs: pairs,
			Page:  server.PageSpec{Limit: limit, After: after},
		})
		if err != nil {
			return err
		}
		fmt.Printf("-> %v", resp.OIDs)
		if resp.More {
			fmt.Printf(" (more; next after=%d)", resp.NextAfter)
		}
		fmt.Println()
		return nil
	case "explain":
		if err := need(2); err != nil {
			return err
		}
		pairs, err := pairsArg(cmd[1:])
		if err != nil {
			return err
		}
		resp, err := c.Explain(&server.FindReq{Pairs: pairs})
		if err != nil {
			return err
		}
		for i, s := range resp.Steps {
			role := "drives"
			if i > 0 {
				role = "seeked"
			}
			if s.Negated {
				role = "subtracted"
			}
			fmt.Printf("%d. %-30s est=%-6d seeks=%-4d emitted=%-4d %s\n",
				i+1, s.Rendered, s.Estimate, s.Seeks, s.Steps, role)
		}
		fmt.Printf("-> %v\n", resp.OIDs)
		return nil
	case "search":
		if err := need(1); err != nil {
			return err
		}
		resp, err := c.Search(cmd[1:], server.PageSpec{})
		if err != nil {
			return err
		}
		fmt.Printf("-> %v\n", resp.OIDs)
		return nil
	case "index":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidArg(cmd[1])
		if err != nil {
			return err
		}
		resp, err := c.Batch(&server.BatchReq{Items: []server.BatchItem{{Index: &oid}}})
		if err != nil {
			return err
		}
		if e := resp.Results[0].Err; e != "" {
			return fmt.Errorf("%s", e)
		}
		return nil
	case "stats":
		m, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("objects=%d creates=%d reads=%d writes=%d\n",
			m.Objects.Objects, m.Objects.Creates, m.Objects.Reads, m.Objects.Writes)
		fmt.Printf("server: admitted=%d rejected=%d ingest: %d ops in %d batches (avg %.1f)\n",
			m.Admitted, m.RejectedInflight+m.RejectedQueue, m.IngestOps, m.IngestBatches, m.AvgCoalesce)
		if w := m.WAL; w != nil {
			fmt.Printf("wal: commits=%d groups=%d syncs=%d (avg group %.1f)\n",
				w.Commits, w.Groups, w.Syncs, w.AvgGroup)
		}
		fmt.Printf("cache: hit rate %.3f (%d hits / %d misses)\n",
			m.Cache.HitRate, m.Cache.Hits, m.Cache.Misses)
		return nil
	default:
		return fmt.Errorf("unknown remote command %q", cmd[0])
	}
}
