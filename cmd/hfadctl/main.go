// Command hfadctl is the interactive face of the reproduction: it creates
// an hFAD volume image in a regular file-backed memory device, populates
// it, and exercises the naming and access APIs from the shell.
//
// Because the simulated device lives in memory, hfadctl runs a scripted
// session: a sequence of commands separated by "--" executed against one
// volume, e.g.
//
//	hfadctl demo
//	hfadctl run \
//	    mkdir /docs -- write /docs/a.txt "hello world" -- \
//	    tag /docs/a.txt UDEF important -- find UDEF important -- \
//	    search hello -- ls /docs -- stat /docs/a.txt -- fsck
//
// With -addr the same scripted session runs against a live hfadd server
// instead, using the object-centric wire API:
//
//	hfadctl -addr localhost:8080 run \
//	    create "hello world" UDEF important -- find UDEF important -- stats
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/hfad"
)

func main() {
	args := os.Args[1:]
	addr := ""
	if len(args) >= 2 && args[0] == "-addr" {
		addr = args[1]
		args = args[2:]
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "demo":
		if addr != "" {
			fmt.Fprintln(os.Stderr, "error: demo runs locally; use -addr with run")
			os.Exit(2)
		}
		if err := runScript(demoScript()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "run":
		var cmds [][]string
		var cur []string
		for _, a := range args[1:] {
			if a == "--" {
				if len(cur) > 0 {
					cmds = append(cmds, cur)
					cur = nil
				}
				continue
			}
			cur = append(cur, a)
		}
		if len(cur) > 0 {
			cmds = append(cmds, cur)
		}
		var err error
		if addr != "" {
			err = runRemoteScript(addr, cmds)
		} else {
			err = runScript(cmds)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hfadctl demo                 guided tour of the volume commands
  hfadctl run CMD... [-- CMD...]
  hfadctl -addr HOST:PORT run CMD... [-- CMD...]
                               run against a live hfadd server
commands:
  mkdir PATH                   create a directory (POSIX view)
  write PATH TEXT              create a file with contents
  cat PATH                     print a file
  ls PATH                      list a directory
  stat PATH                    show metadata
  ln OLD NEW                   hard link (one datum, two names)
  rm PATH                      unlink
  tag PATH TAG VALUE           add a name to the file's object
  untag PATH TAG VALUE         remove a name
  names PATH                   list all names of the file's object
  find TAG VALUE [TAG VALUE]   resolve a naming vector (conjunction)
  findn LIMIT AFTER TAG VALUE [TAG VALUE]
                               paginated find: at most LIMIT results with
                               OID > AFTER (streaming, no full evaluation)
  explain TAG VALUE [TAG VALUE]
                               run the conjunction and print the executed
                               plan: iterator order, estimates, seeks
  search TERM...               full-text conjunction over indexed files
  index PATH                   full-text index a file's contents
  insert PATH OFF TEXT         insert bytes mid-file (native API)
  cut PATH OFF LEN             truncate-range mid-file (native API)
  fsck                         run the volume checker
  stats                        volume statistics`)
	fmt.Fprintln(os.Stderr, remoteUsage())
}

func demoScript() [][]string {
	return [][]string{
		{"mkdir", "/photos"},
		{"write", "/photos/beach.jpg", "sandy beach with margo and nick"},
		{"write", "/photos/lab.jpg", "margo debugging the buddy allocator"},
		{"tag", "/photos/beach.jpg", "UDEF", "person:margo"},
		{"tag", "/photos/beach.jpg", "UDEF", "place:beach"},
		{"tag", "/photos/lab.jpg", "UDEF", "person:margo"},
		{"index", "/photos/beach.jpg"},
		{"index", "/photos/lab.jpg"},
		{"find", "UDEF", "person:margo"},
		{"find", "UDEF", "person:margo", "UDEF", "place:beach"},
		{"search", "buddy", "allocator"},
		{"ln", "/photos/beach.jpg", "/photos/favorite.jpg"},
		{"names", "/photos/beach.jpg"},
		{"insert", "/photos/lab.jpg", "6", "happily "},
		{"cat", "/photos/lab.jpg"},
		{"cut", "/photos/lab.jpg", "6", "8"},
		{"cat", "/photos/lab.jpg"},
		{"ls", "/photos"},
		{"stat", "/photos/beach.jpg"},
		{"fsck"},
		{"stats"},
	}
}

func runScript(cmds [][]string) error {
	st, err := hfad.Create(hfad.NewMemDevice(1<<15), hfad.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, cmd := range cmds {
		fmt.Printf("$ hfadctl %s\n", strings.Join(cmd, " "))
		if err := execute(st, cmd); err != nil {
			return fmt.Errorf("%s: %w", cmd[0], err)
		}
		fmt.Println()
	}
	return nil
}

func execute(st *hfad.Store, cmd []string) error {
	pfs, err := st.POSIX()
	if err != nil {
		return err
	}
	need := func(n int) error {
		if len(cmd) < n+1 {
			return fmt.Errorf("need %d argument(s)", n)
		}
		return nil
	}
	oidOf := func(path string) (hfad.OID, error) {
		m, err := pfs.Stat(path)
		if err != nil {
			return 0, err
		}
		return m.OID, nil
	}
	switch cmd[0] {
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return pfs.MkdirAll(cmd[1], 0o755)
	case "write":
		if err := need(2); err != nil {
			return err
		}
		return pfs.WriteFile(cmd[1], []byte(strings.Join(cmd[2:], " ")), 0o644)
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		data, err := pfs.ReadFile(cmd[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
		return nil
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		entries, err := pfs.ReadDir(cmd[1])
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.Meta.Mode&0o40000 != 0 {
				kind = "d"
			}
			fmt.Printf("%s %8d oid=%-4d %s\n", kind, e.Meta.Size, e.OID, e.Name)
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		m, err := pfs.Stat(cmd[1])
		if err != nil {
			return err
		}
		fmt.Printf("oid=%d size=%d mode=%o owner=%q\n", m.OID, m.Size, m.Mode, m.Owner)
		return nil
	case "ln":
		if err := need(2); err != nil {
			return err
		}
		return pfs.Link(cmd[1], cmd[2])
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return pfs.Remove(cmd[1])
	case "tag":
		if err := need(3); err != nil {
			return err
		}
		oid, err := oidOf(cmd[1])
		if err != nil {
			return err
		}
		return st.Tag(oid, cmd[2], cmd[3])
	case "untag":
		if err := need(3); err != nil {
			return err
		}
		oid, err := oidOf(cmd[1])
		if err != nil {
			return err
		}
		return st.Untag(oid, cmd[2], cmd[3])
	case "names":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidOf(cmd[1])
		if err != nil {
			return err
		}
		names, err := st.Names(oid)
		if err != nil {
			return err
		}
		for _, tv := range names {
			fmt.Printf("%-9s %s\n", tv.Tag, tv.Value)
		}
		return nil
	case "find":
		if err := need(2); err != nil {
			return err
		}
		if len(cmd[1:])%2 != 0 {
			return fmt.Errorf("find wants TAG VALUE pairs")
		}
		var pairs []hfad.TagValue
		for i := 1; i < len(cmd); i += 2 {
			pairs = append(pairs, hfad.TV(cmd[i], cmd[i+1]))
		}
		ids, err := st.Find(pairs...)
		if err != nil {
			return err
		}
		fmt.Printf("-> %v\n", ids)
		return nil
	case "findn":
		if err := need(4); err != nil {
			return err
		}
		var limit int
		var after uint64
		if _, err := fmt.Sscanf(cmd[1], "%d", &limit); err != nil {
			return fmt.Errorf("bad LIMIT %q: %w", cmd[1], err)
		}
		if _, err := fmt.Sscanf(cmd[2], "%d", &after); err != nil {
			return fmt.Errorf("bad AFTER %q: %w", cmd[2], err)
		}
		if len(cmd[3:])%2 != 0 {
			return fmt.Errorf("findn wants TAG VALUE pairs")
		}
		var pairs []hfad.TagValue
		for i := 3; i < len(cmd); i += 2 {
			pairs = append(pairs, hfad.TV(cmd[i], cmd[i+1]))
		}
		ids, err := st.FindPage(hfad.Page{Limit: limit, After: hfad.OID(after)}, pairs...)
		if err != nil {
			return err
		}
		fmt.Printf("-> %v\n", ids)
		return nil
	case "explain":
		if err := need(2); err != nil {
			return err
		}
		if len(cmd[1:])%2 != 0 {
			return fmt.Errorf("explain wants TAG VALUE pairs")
		}
		var kids []hfad.Query
		for i := 1; i < len(cmd); i += 2 {
			kids = append(kids, hfad.Term{Tag: cmd[i], Value: []byte(cmd[i+1])})
		}
		ids, steps, err := st.Profile(hfad.And{Kids: kids}, hfad.Page{})
		if err != nil {
			return err
		}
		for i, s := range steps {
			role := "drives"
			if i > 0 {
				role = "seeked"
			}
			if s.Negated {
				role = "subtracted"
			}
			fmt.Printf("%d. %-30s est=%-6d seeks=%-4d emitted=%-4d %s\n",
				i+1, s.Rendered, s.Estimate, s.Seeks, s.Steps, role)
		}
		fmt.Printf("-> %v\n", ids)
		return nil
	case "search":
		if err := need(1); err != nil {
			return err
		}
		var pairs []hfad.TagValue
		for _, term := range cmd[1:] {
			pairs = append(pairs, hfad.TV(hfad.TagFulltext, term))
		}
		ids, err := st.Find(pairs...)
		if err != nil {
			return err
		}
		fmt.Printf("-> %v\n", ids)
		return nil
	case "index":
		if err := need(1); err != nil {
			return err
		}
		oid, err := oidOf(cmd[1])
		if err != nil {
			return err
		}
		return st.IndexContent(oid)
	case "insert":
		if err := need(3); err != nil {
			return err
		}
		f, err := pfs.OpenRW(cmd[1])
		if err != nil {
			return err
		}
		defer f.Close()
		var off uint64
		if _, err := fmt.Sscanf(cmd[2], "%d", &off); err != nil {
			return err
		}
		return f.Insert(off, []byte(strings.Join(cmd[3:], " ")))
	case "cut":
		if err := need(3); err != nil {
			return err
		}
		f, err := pfs.OpenRW(cmd[1])
		if err != nil {
			return err
		}
		defer f.Close()
		var off, n uint64
		if _, err := fmt.Sscanf(cmd[2], "%d", &off); err != nil {
			return err
		}
		if _, err := fmt.Sscanf(cmd[3], "%d", &n); err != nil {
			return err
		}
		return f.TruncateRange(off, n)
	case "fsck":
		rep, err := st.Check()
		if err != nil {
			return err
		}
		if rep.Ok() {
			fmt.Printf("clean: %d objects, %d extents (%d holes), %d metadata pages, %d used / %d free blocks\n",
				rep.Objects, rep.Extents, rep.Holes, rep.MetadataPages, rep.UsedBlocks, rep.FreeBlocks)
			return nil
		}
		for _, p := range rep.Problems {
			fmt.Println("PROBLEM:", p)
		}
		return fmt.Errorf("%d problem(s)", len(rep.Problems))
	case "stats":
		o := st.Volume().OSD.Stats()
		a := st.Volume().Allocator().Stats()
		fmt.Printf("objects=%d creates=%d writes=%d inserts=%d\n", o.Objects, o.Creates, o.Writes, o.Inserts)
		fmt.Printf("blocks: used=%d free=%d fragmentation=%.3f\n", a.UsedBlocks, a.FreeBlocks, a.Fragmentation())
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
}
