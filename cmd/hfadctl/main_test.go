package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/hfad"
	"repro/internal/server"
)

// TestDemoScript smoke-tests the whole command surface against a fresh
// in-memory volume — the same script `hfadctl demo` runs.
func TestDemoScript(t *testing.T) {
	if err := runScript(demoScript()); err != nil {
		t.Fatalf("demo script: %v", err)
	}
}

// TestQueryCommands covers the streaming-engine commands (findn paging,
// explain) plus error paths the demo script does not reach.
func TestQueryCommands(t *testing.T) {
	script := [][]string{
		{"mkdir", "/d"},
		{"write", "/d/a", "alpha"},
		{"write", "/d/b", "beta"},
		{"write", "/d/c", "gamma"},
		{"tag", "/d/a", "UDEF", "x"},
		{"tag", "/d/b", "UDEF", "x"},
		{"tag", "/d/c", "UDEF", "x"},
		{"findn", "2", "0", "UDEF", "x"},
		{"findn", "10", "2", "UDEF", "x"},
		{"explain", "UDEF", "x", "POSIX", "/d/a"},
	}
	if err := runScript(script); err != nil {
		t.Fatalf("query commands: %v", err)
	}
}

func TestBadCommands(t *testing.T) {
	for _, script := range [][][]string{
		{{"bogus"}},
		{{"findn", "zap", "0", "UDEF", "x"}},
		{{"findn", "1", "0", "UDEF"}},
		{{"explain", "UDEF"}},
		{{"cat", "/missing"}},
	} {
		if err := runScript(script); err == nil {
			t.Errorf("script %v succeeded, want error", script)
		}
	}
}

// TestRemoteScript runs the -addr command set against an in-process
// hfadd server.
func TestRemoteScript(t *testing.T) {
	st, err := hfad.Create(hfad.NewMemDevice(1<<14), hfad.Options{Transactional: true, WALBlocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, server.Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	c := server.NewClient(hs.URL)
	created, err := c.Create(&server.CreateReq{Data: []byte("remote object")})
	if err != nil {
		t.Fatal(err)
	}
	oid := fmt.Sprintf("%d", created.OID)

	script := [][]string{
		{"create", "hello remote", "UDEF", "greeting"},
		{"append", oid, "more bytes"},
		{"cat", oid},
		{"stat", oid},
		{"tag", oid, "UDEF", "x"},
		{"names", oid},
		{"find", "UDEF", "x"},
		{"findn", "1", "0", "UDEF", "x"},
		{"explain", "UDEF", "x"},
		{"index", oid},
		{"search", "remote"},
		{"untag", oid, "UDEF", "x"},
		{"stats"},
		{"rm", oid},
	}
	if err := runRemoteScript(hs.URL, script); err != nil {
		t.Fatalf("remote script: %v", err)
	}

	for _, script := range [][]string{
		{"bogus"},
		{"stat", "notanumber"},
		{"cat", "99999"},
		{"find", "UDEF"},
	} {
		if err := executeRemote(c, script); err == nil {
			t.Errorf("remote %v succeeded, want error", script)
		}
	}
}
