package main

import "testing"

// TestDemoScript smoke-tests the whole command surface against a fresh
// in-memory volume — the same script `hfadctl demo` runs.
func TestDemoScript(t *testing.T) {
	if err := runScript(demoScript()); err != nil {
		t.Fatalf("demo script: %v", err)
	}
}

// TestQueryCommands covers the streaming-engine commands (findn paging,
// explain) plus error paths the demo script does not reach.
func TestQueryCommands(t *testing.T) {
	script := [][]string{
		{"mkdir", "/d"},
		{"write", "/d/a", "alpha"},
		{"write", "/d/b", "beta"},
		{"write", "/d/c", "gamma"},
		{"tag", "/d/a", "UDEF", "x"},
		{"tag", "/d/b", "UDEF", "x"},
		{"tag", "/d/c", "UDEF", "x"},
		{"findn", "2", "0", "UDEF", "x"},
		{"findn", "10", "2", "UDEF", "x"},
		{"explain", "UDEF", "x", "POSIX", "/d/a"},
	}
	if err := runScript(script); err != nil {
		t.Fatalf("query commands: %v", err)
	}
}

func TestBadCommands(t *testing.T) {
	for _, script := range [][][]string{
		{{"bogus"}},
		{{"findn", "zap", "0", "UDEF", "x"}},
		{{"findn", "1", "0", "UDEF"}},
		{{"explain", "UDEF"}},
		{{"cat", "/missing"}},
	} {
		if err := runScript(script); err == nil {
			t.Errorf("script %v succeeded, want error", script)
		}
	}
}
