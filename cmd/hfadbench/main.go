// Command hfadbench regenerates every exhibit and experiment recorded in
// EXPERIMENTS.md: the paper's Table 1 and Figure 1, and the
// claim-derived experiments E1–E14 against the hierarchical baseline.
//
// Usage:
//
//	hfadbench                  # run everything at full scale
//	hfadbench -scale smoke     # seconds-fast versions
//	hfadbench -run E1,E3,E7    # a subset
//	hfadbench -list            # show the experiment index
//	hfadbench -json out.json   # also write machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

// jsonResult is one experiment's machine-readable record; CI emits these
// (BENCH_pr<N>.json) so the perf trajectory accumulates across PRs.
type jsonResult struct {
	ID     string      `json:"id"`
	Name   string      `json:"name"`
	Claim  string      `json:"claim,omitempty"`
	Scale  string      `json:"scale"`
	Millis float64     `json:"wall_ms"`
	Tables []jsonTable `json:"tables"`
	Notes  []string    `json:"notes,omitempty"`
	Error  string      `json:"error,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	scaleFlag := flag.String("scale", "full", "smoke | full")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	flag.Parse()

	if *list {
		fmt.Println("id    experiment")
		fmt.Println("---   ----------")
		for _, r := range bench.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Name)
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "smoke":
		scale = bench.Smoke
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want smoke or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var runners []bench.Runner
	if *runIDs == "" {
		runners = bench.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r := bench.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	fmt.Printf("hFAD experiment harness — %d experiment(s), scale=%s\n\n", len(runners), *scaleFlag)
	failed := 0
	var records []jsonResult
	for _, r := range runners {
		t0 := time.Now()
		res, err := r.Run(scale)
		elapsed := time.Since(t0)
		rec := jsonResult{
			ID:     r.ID,
			Name:   r.Name,
			Scale:  *scaleFlag,
			Millis: float64(elapsed.Nanoseconds()) / 1e6,
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			rec.Error = err.Error()
			records = append(records, rec)
			failed++
			continue
		}
		rec.Claim = res.Claim
		rec.Notes = res.Notes
		for _, tbl := range res.Tables {
			rec.Tables = append(rec.Tables, jsonTable{
				Title:   tbl.Title,
				Columns: tbl.Columns,
				Rows:    tbl.Rows(),
			})
		}
		records = append(records, rec)
		fmt.Print(res.String())
		fmt.Printf("(%s in %s)\n\n", r.ID, elapsed.Round(time.Millisecond))
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
