// Command hfadbench regenerates every exhibit and experiment recorded in
// EXPERIMENTS.md: the paper's Table 1 and Figure 1, and the ten
// claim-derived experiments E1–E10 against the hierarchical baseline.
//
// Usage:
//
//	hfadbench                  # run everything at full scale
//	hfadbench -scale smoke     # seconds-fast versions
//	hfadbench -run E1,E3,E7    # a subset
//	hfadbench -list            # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	scaleFlag := flag.String("scale", "full", "smoke | full")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		fmt.Println("id    experiment")
		fmt.Println("---   ----------")
		for _, r := range bench.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Name)
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "smoke":
		scale = bench.Smoke
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want smoke or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var runners []bench.Runner
	if *runIDs == "" {
		runners = bench.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r := bench.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	fmt.Printf("hFAD experiment harness — %d experiment(s), scale=%s\n\n", len(runners), *scaleFlag)
	failed := 0
	for _, r := range runners {
		t0 := time.Now()
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
