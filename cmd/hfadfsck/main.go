// Command hfadfsck demonstrates the volume checker against healthy and
// deliberately damaged volumes. With no flags it builds a volume, checks
// it, then injects corruption and shows the checker catching it — the
// offline-fsck story for a file system whose namespace is a set of
// indexes rather than a directory tree.
//
// Usage:
//
//	hfadfsck          # healthy + corrupted demonstration
//	hfadfsck -crash   # crash-injection + recovery + fsck demonstration
//	hfadfsck -extents # extent-tree structural verification demonstration
//	hfadfsck -scrub   # checksum scrub over seeded media corruption
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/hfad"
	"repro/internal/blockdev"
	"repro/internal/osd"
)

func main() {
	crash := flag.Bool("crash", false, "demonstrate crash recovery instead of corruption detection")
	extents := flag.Bool("extents", false, "demonstrate extent-tree structural verification")
	scrub := flag.Bool("scrub", false, "demonstrate the checksum scrub over seeded media corruption")
	flag.Parse()
	var err error
	switch {
	case *crash:
		err = crashDemo()
	case *extents:
		err = extentDemo()
	case *scrub:
		err = scrubDemo()
	default:
		err = corruptionDemo()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func populate(st *hfad.Store) error {
	pfs, err := st.POSIX()
	if err != nil {
		return err
	}
	if err := pfs.MkdirAll("/data", 0o755); err != nil {
		return err
	}
	for i := 0; i < 25; i++ {
		p := fmt.Sprintf("/data/file%02d", i)
		if err := pfs.WriteFile(p, []byte(fmt.Sprintf("contents of file %d", i)), 0o644); err != nil {
			return err
		}
		m, err := pfs.Stat(p)
		if err != nil {
			return err
		}
		if err := st.Tag(m.OID, hfad.TagUDef, fmt.Sprintf("bucket:%d", i%5)); err != nil {
			return err
		}
	}
	return nil
}

func report(st *hfad.Store) error {
	rep, err := st.Check()
	if err != nil {
		return err
	}
	if rep.Ok() {
		fmt.Printf("  clean: %d objects, %d extents, %d metadata pages, %d used + %d free blocks\n",
			rep.Objects, rep.Extents, rep.MetadataPages, rep.UsedBlocks, rep.FreeBlocks)
		return nil
	}
	fmt.Printf("  %d problem(s):\n", len(rep.Problems))
	for i, p := range rep.Problems {
		if i == 8 {
			fmt.Printf("    ... and %d more\n", len(rep.Problems)-8)
			break
		}
		fmt.Println("   ", p)
	}
	return nil
}

func corruptionDemo() error {
	mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
	st, err := hfad.Create(mem, hfad.Options{})
	if err != nil {
		return err
	}
	if err := populate(st); err != nil {
		return err
	}
	fmt.Println("== healthy volume ==")
	if err := report(st); err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}

	// Scribble over in-use metadata: scan the data region for occupied
	// blocks (past the superblock and allocator-snapshot region) and
	// flip bits in a handful of them.
	fmt.Println("== after corrupting metadata blocks ==")
	buf := make([]byte, blockdev.DefaultBlockSize)
	corrupted := 0
	for target := uint64(65); target < mem.NumBlocks() && corrupted < 6; target++ {
		if err := mem.ReadBlock(target, buf); err != nil {
			return err
		}
		inUse := false
		for _, b := range buf {
			if b != 0 {
				inUse = true
				break
			}
		}
		if !inUse {
			continue
		}
		for i := range buf {
			buf[i] ^= 0x5A
		}
		if err := mem.WriteBlock(target, buf); err != nil {
			return err
		}
		corrupted++
	}
	fmt.Printf("  corrupted %d occupied blocks\n", corrupted)
	// Reopen from the damaged image so no cache hides the damage.
	st2, err := hfad.Open(mem, hfad.Options{})
	if err != nil {
		fmt.Printf("  open refused the volume outright: %v\n", err)
		return nil
	}
	if err := report(st2); err != nil {
		// A checker crash on garbage is itself detection; report and
		// succeed.
		fmt.Printf("  checker error (detected): %v\n", err)
	}
	return nil
}

// extentDemo targets the extent-tree structural checks: node size
// accounting versus the recorded object size, extent overlap/ordering,
// and orphaned allocation runs. It builds multi-extent objects, then
// injects each class of damage into a raw extent leaf and shows the
// checker naming it.
func extentDemo() error {
	build := func() (*blockdev.MemDevice, error) {
		mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
		st, err := hfad.Create(mem, hfad.Options{MaxExtentBytes: 4096})
		if err != nil {
			return nil, err
		}
		pfs, err := st.POSIX()
		if err != nil {
			return nil, err
		}
		body := make([]byte, 120*1024) // ~30 extents per file
		for i := range body {
			body[i] = byte(i)
		}
		for i := 0; i < 3; i++ {
			if err := pfs.WriteFile(fmt.Sprintf("/big%d", i), body, 0o644); err != nil {
				return nil, err
			}
		}
		return mem, st.Close()
	}

	// findExtentLeaf scans the raw image for an extent-tree leaf (page
	// type 6) holding at least two real extents.
	const (
		leafType  = 6
		hdrSize   = 24
		cellSize  = 16
		offNCells = 2
	)
	findExtentLeaf := func(mem *blockdev.MemDevice) (uint64, []byte, error) {
		buf := make([]byte, blockdev.DefaultBlockSize)
		for b := uint64(1); b < mem.NumBlocks(); b++ {
			if err := mem.ReadBlock(b, buf); err != nil {
				return 0, nil, err
			}
			if buf[0] != leafType {
				continue
			}
			n := int(binary.LittleEndian.Uint16(buf[offNCells:]))
			if n < 2 || hdrSize+n*cellSize > len(buf) {
				continue
			}
			if binary.LittleEndian.Uint64(buf[hdrSize:]) == 0 ||
				binary.LittleEndian.Uint64(buf[hdrSize+cellSize:]) == 0 {
				continue // want two real (non-hole) extents
			}
			out := make([]byte, len(buf))
			copy(out, buf)
			return b, out, nil
		}
		return 0, nil, fmt.Errorf("no extent leaf with two real extents found")
	}

	fmt.Println("== healthy multi-extent volume ==")
	mem, err := build()
	if err != nil {
		return err
	}
	cleanImg := mem.Snapshot()
	blk, orig, err := findExtentLeaf(mem)
	if err != nil {
		return err
	}

	// Each scenario restores the pristine image, injects one class of
	// damage into the found leaf, and runs the checker on a clean open.
	scenario := func(label string, tamper func(leaf []byte)) error {
		if label != "" {
			fmt.Printf("== %s ==\n", label)
		}
		dev := blockdev.NewMem(mem.NumBlocks(), blockdev.DefaultBlockSize)
		if err := dev.RestoreFrom(cleanImg); err != nil {
			return err
		}
		if tamper != nil {
			leaf := make([]byte, len(orig))
			copy(leaf, orig)
			tamper(leaf)
			if err := dev.WriteBlock(blk, leaf); err != nil {
				return err
			}
		}
		st, err := hfad.Open(dev, hfad.Options{})
		if err != nil {
			fmt.Printf("  open refused the volume outright: %v\n", err)
			return nil
		}
		if err := report(st); err != nil {
			fmt.Printf("  checker error (detected): %v\n", err)
		}
		return nil
	}

	if err := scenario("", nil); err != nil {
		return err
	}
	if err := scenario("size accounting: extent length inflated in a leaf", func(leaf []byte) {
		// Cell 0's Len field lives at cell offset 12: the leaf's sum no
		// longer matches its parent count or the recorded object size.
		lenOff := hdrSize + 12
		binary.LittleEndian.PutUint32(leaf[lenOff:],
			binary.LittleEndian.Uint32(leaf[lenOff:])+512)
	}); err != nil {
		return err
	}
	if err := scenario("overlap: two extents claiming one allocation", func(leaf []byte) {
		// Point cell 1's allocation at cell 0's: double ownership.
		copy(leaf[hdrSize+cellSize:hdrSize+cellSize+8], leaf[hdrSize:hdrSize+8])
	}); err != nil {
		return err
	}
	return scenario("orphaned run: an extent pointed off its allocation", func(leaf []byte) {
		// Shift cell 0's allocation: its real blocks become an orphaned
		// leak while the claimed range collides with its neighbour's.
		alloc := binary.LittleEndian.Uint64(leaf[hdrSize:])
		binary.LittleEndian.PutUint64(leaf[hdrSize:], alloc+1)
	})
}

// scrubDemo builds a volume, seeds single-bit rot into occupied blocks of
// every class (btree node, extent node, data block), and shows the scrub
// naming each — plus the typed read-time detection a client would see.
func scrubDemo() error {
	mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
	st, err := hfad.Create(mem, hfad.Options{Transactional: true, MaxExtentBytes: 4096})
	if err != nil {
		return err
	}
	if err := populate(st); err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}

	fmt.Println("== clean scrub ==")
	rep, err := st.Scrub(hfad.ScrubOptions{})
	if err != nil {
		return err
	}
	fmt.Println("  " + rep.String())

	// Seed rot: flip one bit in several occupied data-region blocks,
	// bypassing the store (media corruption, not a software write).
	start, blocks := st.Volume().DataRegion()
	buf := make([]byte, blockdev.DefaultBlockSize)
	flipped := 0
	for b := start; b < start+blocks && flipped < 8; b += 37 {
		if err := mem.ReadBlock(b, buf); err != nil {
			return err
		}
		occupied := false
		for _, c := range buf {
			if c != 0 {
				occupied = true
				break
			}
		}
		if !occupied {
			continue
		}
		buf[int(b)%len(buf)] ^= 1 << (b % 8)
		if err := mem.WriteBlock(b, buf); err != nil {
			return err
		}
		flipped++
	}
	fmt.Printf("== after flipping one bit in %d occupied blocks ==\n", flipped)
	rep, err = st.Scrub(hfad.ScrubOptions{})
	if err != nil {
		return err
	}
	fmt.Println("  " + rep.String())
	if len(rep.CorruptPages) > 0 {
		fmt.Printf("  corrupt blocks: %v\n", rep.CorruptPages)
	}
	return nil
}

func crashDemo() error {
	mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
	fd := blockdev.NewFault(mem)
	st, err := hfad.Create(fd, hfad.Options{Transactional: true})
	if err != nil {
		return err
	}
	if err := populate(st); err != nil {
		return err
	}
	fmt.Println("== committed state built (transactional volume) ==")

	fmt.Println("== injecting device failure mid-operation ==")
	fd.FailAfterWrites(7)
	for i := 0; i < 100; i++ {
		obj, err := st.CreateObject("crasher")
		if err != nil {
			fmt.Printf("  operation %d failed as injected: %v\n", i, err)
			break
		}
		if err := obj.Append([]byte("doomed")); err != nil {
			fmt.Printf("  operation %d failed as injected: %v\n", i, err)
			break
		}
		obj.Close()
	}
	if !fd.Tripped() {
		return fmt.Errorf("fault never fired")
	}

	fmt.Println("== reopening from the surviving image (WAL recovery) ==")
	st2, err := hfad.Open(mem, hfad.Options{})
	if err != nil {
		return err
	}
	if err := report(st2); err != nil {
		return err
	}
	// Committed data must still resolve.
	ids, err := st2.Find(hfad.TV(hfad.TagUDef, "bucket:3"))
	if err != nil {
		return err
	}
	fmt.Printf("  committed names intact: bucket:3 -> %d objects\n", len(ids))
	var stat osd.Meta
	if len(ids) > 0 {
		stat, err = st2.Stat(ids[0])
		if err != nil {
			return err
		}
		fmt.Printf("  object %d: %d bytes, owner %q\n", stat.OID, stat.Size, stat.Owner)
	}
	return st2.Close()
}
