// Command hfadfsck demonstrates the volume checker against healthy and
// deliberately damaged volumes. With no flags it builds a volume, checks
// it, then injects corruption and shows the checker catching it — the
// offline-fsck story for a file system whose namespace is a set of
// indexes rather than a directory tree.
//
// Usage:
//
//	hfadfsck          # healthy + corrupted demonstration
//	hfadfsck -crash   # crash-injection + recovery + fsck demonstration
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/hfad"
	"repro/internal/blockdev"
	"repro/internal/osd"
)

func main() {
	crash := flag.Bool("crash", false, "demonstrate crash recovery instead of corruption detection")
	flag.Parse()
	var err error
	if *crash {
		err = crashDemo()
	} else {
		err = corruptionDemo()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func populate(st *hfad.Store) error {
	pfs, err := st.POSIX()
	if err != nil {
		return err
	}
	if err := pfs.MkdirAll("/data", 0o755); err != nil {
		return err
	}
	for i := 0; i < 25; i++ {
		p := fmt.Sprintf("/data/file%02d", i)
		if err := pfs.WriteFile(p, []byte(fmt.Sprintf("contents of file %d", i)), 0o644); err != nil {
			return err
		}
		m, err := pfs.Stat(p)
		if err != nil {
			return err
		}
		if err := st.Tag(m.OID, hfad.TagUDef, fmt.Sprintf("bucket:%d", i%5)); err != nil {
			return err
		}
	}
	return nil
}

func report(st *hfad.Store) error {
	rep, err := st.Check()
	if err != nil {
		return err
	}
	if rep.Ok() {
		fmt.Printf("  clean: %d objects, %d extents, %d metadata pages, %d used + %d free blocks\n",
			rep.Objects, rep.Extents, rep.MetadataPages, rep.UsedBlocks, rep.FreeBlocks)
		return nil
	}
	fmt.Printf("  %d problem(s):\n", len(rep.Problems))
	for i, p := range rep.Problems {
		if i == 8 {
			fmt.Printf("    ... and %d more\n", len(rep.Problems)-8)
			break
		}
		fmt.Println("   ", p)
	}
	return nil
}

func corruptionDemo() error {
	mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
	st, err := hfad.Create(mem, hfad.Options{})
	if err != nil {
		return err
	}
	if err := populate(st); err != nil {
		return err
	}
	fmt.Println("== healthy volume ==")
	if err := report(st); err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}

	// Scribble over in-use metadata: scan the data region for occupied
	// blocks (past the superblock and allocator-snapshot region) and
	// flip bits in a handful of them.
	fmt.Println("== after corrupting metadata blocks ==")
	buf := make([]byte, blockdev.DefaultBlockSize)
	corrupted := 0
	for target := uint64(65); target < mem.NumBlocks() && corrupted < 6; target++ {
		if err := mem.ReadBlock(target, buf); err != nil {
			return err
		}
		inUse := false
		for _, b := range buf {
			if b != 0 {
				inUse = true
				break
			}
		}
		if !inUse {
			continue
		}
		for i := range buf {
			buf[i] ^= 0x5A
		}
		if err := mem.WriteBlock(target, buf); err != nil {
			return err
		}
		corrupted++
	}
	fmt.Printf("  corrupted %d occupied blocks\n", corrupted)
	// Reopen from the damaged image so no cache hides the damage.
	st2, err := hfad.Open(mem, hfad.Options{})
	if err != nil {
		fmt.Printf("  open refused the volume outright: %v\n", err)
		return nil
	}
	if err := report(st2); err != nil {
		// A checker crash on garbage is itself detection; report and
		// succeed.
		fmt.Printf("  checker error (detected): %v\n", err)
	}
	return nil
}

func crashDemo() error {
	mem := blockdev.NewMem(1<<15, blockdev.DefaultBlockSize)
	fd := blockdev.NewFault(mem)
	st, err := hfad.Create(fd, hfad.Options{Transactional: true})
	if err != nil {
		return err
	}
	if err := populate(st); err != nil {
		return err
	}
	fmt.Println("== committed state built (transactional volume) ==")

	fmt.Println("== injecting device failure mid-operation ==")
	fd.FailAfterWrites(7)
	for i := 0; i < 100; i++ {
		obj, err := st.CreateObject("crasher")
		if err != nil {
			fmt.Printf("  operation %d failed as injected: %v\n", i, err)
			break
		}
		if err := obj.Append([]byte("doomed")); err != nil {
			fmt.Printf("  operation %d failed as injected: %v\n", i, err)
			break
		}
		obj.Close()
	}
	if !fd.Tripped() {
		return fmt.Errorf("fault never fired")
	}

	fmt.Println("== reopening from the surviving image (WAL recovery) ==")
	st2, err := hfad.Open(mem, hfad.Options{})
	if err != nil {
		return err
	}
	if err := report(st2); err != nil {
		return err
	}
	// Committed data must still resolve.
	ids, err := st2.Find(hfad.TV(hfad.TagUDef, "bucket:3"))
	if err != nil {
		return err
	}
	fmt.Printf("  committed names intact: bucket:3 -> %d objects\n", len(ids))
	var stat osd.Meta
	if len(ids) > 0 {
		stat, err = st2.Stat(ids[0])
		if err != nil {
			return err
		}
		fmt.Printf("  object %d: %d bytes, owner %q\n", stat.OID, stat.Size, stat.Owner)
	}
	return st2.Close()
}
