// Command hfadd serves an hFAD volume over HTTP/JSON: the full store
// surface (create/append/read/stat/tag/find/query/search/batch) with
// cross-connection write coalescing, admission control, and /metrics.
//
//	hfadd -vol /data/hfad.img -blocks 262144 -addr :8080
//
// The volume is a file-backed block device, created and formatted on
// first use; -mem serves an in-memory volume instead (testing). SIGINT
// or SIGTERM triggers a graceful shutdown: stop accepting, finish
// in-flight requests, drain the ingest queue, close the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/hfad"
	"repro/internal/blockdev"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		vol      = flag.String("vol", "", "volume image path (file-backed device)")
		blocks   = flag.Uint64("blocks", 1<<16, "volume size in 4 KiB blocks when creating")
		mem      = flag.Bool("mem", false, "serve an in-memory volume (testing; data dies with the process)")
		walBlks  = flag.Uint64("wal", 4096, "WAL region size in blocks")
		cache    = flag.Int("cache", 4096, "buffer cache pages")
		inflight = flag.Int("max-inflight", 256, "max concurrently executing requests (admission bound)")
		queue    = flag.Int("queue", 1024, "ingest queue depth (write admission bound)")
		coalesce = flag.Int("coalesce", 128, "max writes coalesced into one transaction")
		workers  = flag.Int("ingest-workers", 0, "coalescing workers (0 = min(4, GOMAXPROCS))")
		drainS   = flag.Int("drain-timeout", 30, "graceful shutdown timeout, seconds")
	)
	flag.Parse()
	if err := run(*addr, *vol, *blocks, *mem, *walBlks, *cache, *inflight, *queue, *coalesce, *workers, *drainS); err != nil {
		log.Fatal(err)
	}
}

func run(addr, vol string, blocks uint64, mem bool, walBlks uint64, cache, inflight, queue, coalesce, workers, drainS int) error {
	opts := hfad.Options{
		Transactional: true,
		WALBlocks:     walBlks,
		CachePages:    cache,
	}
	st, err := openStore(vol, blocks, mem, opts)
	if err != nil {
		return err
	}

	srv := server.New(st, server.Options{
		MaxInFlight:    inflight,
		QueueDepth:     queue,
		CoalesceWindow: coalesce,
		IngestWorkers:  workers,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		st.Close()
		return err
	}
	log.Printf("hfadd: serving on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("hfadd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(drainS)*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		log.Printf("hfadd: clean shutdown")
		return nil
	case err := <-errc:
		st.Close()
		return err
	}
}

// openStore opens (or creates and formats) the volume. A file image that
// already exists is opened with WAL recovery; a fresh path is created
// with the requested geometry.
func openStore(vol string, blocks uint64, mem bool, opts hfad.Options) (*hfad.Store, error) {
	if mem {
		return hfad.Create(hfad.NewMemDevice(blocks), opts)
	}
	if vol == "" {
		return nil, fmt.Errorf("hfadd: need -vol PATH or -mem")
	}
	if _, err := os.Stat(vol); err == nil {
		dev, err := blockdev.OpenFile(vol, blockdev.DefaultBlockSize)
		if err != nil {
			return nil, err
		}
		st, err := hfad.Open(dev, opts)
		if err != nil {
			dev.Close() //hfadvet:allow syncerr — best-effort cleanup; the Open failure is the verdict
			return nil, err
		}
		log.Printf("hfadd: opened %s (%d blocks)", vol, dev.NumBlocks())
		return st, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Only a definitely-absent image takes the create path:
		// CreateFile truncates, and treating a transient stat failure
		// (EACCES, EIO, ...) as "no volume" would destroy the image.
		return nil, fmt.Errorf("hfadd: stat %s: %w", vol, err)
	}
	dev, err := blockdev.CreateFile(vol, blocks, blockdev.DefaultBlockSize)
	if err != nil {
		return nil, err
	}
	st, err := hfad.Create(dev, opts)
	if err != nil {
		dev.Close() //hfadvet:allow syncerr — best-effort cleanup; the image is removed next anyway
		os.Remove(vol)
		return nil, err
	}
	log.Printf("hfadd: created %s (%d blocks)", vol, blocks)
	return st, nil
}
