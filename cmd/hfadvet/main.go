// Command hfadvet is the multichecker for this module's invariant
// analyzers. It speaks the go command's vettool protocol, so the
// canonical invocation is
//
//	go vet -vettool=$(command -v hfadvet) ./...
//
// (or any built path to the binary). As a convenience, invoking it with
// package patterns instead of a vet .cfg file re-executes itself through
// `go vet`:
//
//	hfadvet ./...
//
// Analyzers (each documented in its package under internal/analysis):
//
//	opbracket        beginOp/Options.Begin brackets reach done(err) on
//	                 every path; op-threading call errors are not dropped
//	lockorder        documented lock order Volume.mu → osd.Object.wmu →
//	                 tree locks → pager shard latches never inverts
//	sentinelerr      sentinel errors are matched with errors.Is, not ==
//	replayexhaustive every redo record kind/opcode is handled by replay
//	waldata          no direct device writes bypass the WAL capture in
//	                 btree, extent, osd
//	pinbalance       every page Acquire reaches exactly one Release on
//	                 all paths (forward dataflow over the CFG)
//	pinescape        values derived from pinned page data must not
//	                 outlive the pin (interprocedural taint facts)
//	atomicfield      a field accessed via sync/atomic is accessed
//	                 atomically everywhere
//	syncerr          errors from durability barriers (Sync, Close,
//	                 FlushDirty, Checkpoint) are checked (liveness)
//
// A finding can be suppressed — visibly, greppably — with a trailing
// comment: //hfadvet:allow <analyzer> — reason.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/opbracket"
	"repro/internal/analysis/pinbalance"
	"repro/internal/analysis/pinescape"
	"repro/internal/analysis/replayexhaustive"
	"repro/internal/analysis/sentinelerr"
	"repro/internal/analysis/syncerr"
	"repro/internal/analysis/unitchecker"
	"repro/internal/analysis/waldata"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		opbracket.Analyzer,
		lockorder.Analyzer,
		sentinelerr.Analyzer,
		replayexhaustive.Analyzer,
		waldata.Analyzer,
		pinbalance.Analyzer,
		pinescape.Analyzer,
		atomicfield.Analyzer,
		syncerr.Analyzer,
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") && !strings.HasSuffix(args[len(args)-1], ".cfg") {
		// Package patterns: drive ourselves through go vet, which owns
		// package loading, export data, and per-package fact caching.
		standalone(args)
	}
	unitchecker.Main(analyzers()...)
}

func standalone(patterns []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hfadvet: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "hfadvet: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}
